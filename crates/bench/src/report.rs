//! The BENCH report model — machine-readable experiment results.
//!
//! A [`Report`] is one experiment cell (workload × backend) measured over
//! all four index structures. It renders two ways: the aligned text tables
//! humans read, and a versioned JSON artifact (`BENCH_<experiment>.json`)
//! that `bench-diff` and CI consume. The schema is append-only: bump
//! [`BENCH_SCHEMA_VERSION`] when a field changes meaning, never silently.
//!
//! Schema (v4), all fields required:
//!
//! ```text
//! { schema_version, experiment, workload, backend, scale, records, ops,
//!   seed, node_bytes, calibration_hash_mbps, sha256_backend, chunker,
//!   shards, adaptive_sharding,
//!   indexes: [ { index,
//!     load:      { entries, commits, entries_per_sec, payload_bytes,
//!                  bytes_written, write_amplification,
//!                  bytes_written_per_commit },
//!     run:       { ops, ops_per_sec,
//!                  latency_us: [ {verb, count, p50, p95, p99} ... ] },
//!     structure: { nodes, height, entries, leaf_occupancy,
//!                  avg_node_bytes },
//!     storage:   { logical_bytes, unique_bytes, unique_pages,
//!                  share_ratio, dedup_savings, bytes_written },
//!     caches:    { node_cache_hit_rate, store_hit_rate,
//!                  page_cache_hit_rate },
//!     proofs:    { membership_count, membership_bytes_avg,
//!                  membership_verify_us_p50, scan_count, scan_bytes_avg,
//!                  scan_verify_us_p50 } } ... ] }
//! ```

use std::io;
use std::path::{Path, PathBuf};

use crate::table::{mib, ratio, Json, Table};

/// Version stamp of the BENCH artifact schema.
///
/// v2 added `sha256_backend` (scalar / sha-ni / neon) and `chunker`
/// (buzhash / gear): throughput depends heavily on whether hashing ran
/// hardware-accelerated, so comparing a scalar baseline against a sha-ni
/// run (or vice versa) is a configuration mismatch, not a perf delta.
///
/// v3 added `shards` and `adaptive_sharding` (the engine's branch-head
/// partition, `SIRI_SHARDS`): a sharded run commits through per-range CAS
/// slots and publishes manifest pages, so its throughput and write counts
/// are not comparable to a single-slot baseline — same rule as the hash
/// backend, refuse rather than mis-diff.
///
/// v4 added the per-index `proofs` section (verified reads, the paper's
/// Figure 12): sampled membership proofs over the stream's read keys and
/// verified scans over its scan windows, reporting mean encoded proof
/// size and median client-side verification latency for each.
pub const BENCH_SCHEMA_VERSION: u64 = 4;

/// Latency percentiles of one op verb (µs).
#[derive(Debug, Clone, PartialEq)]
pub struct VerbLatency {
    pub verb: String,
    pub count: u64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
}

/// Everything measured for one index structure in one experiment cell.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IndexReport {
    pub index: String,
    // Load phase (batched bulk build).
    pub load_entries: u64,
    pub load_commits: u64,
    pub load_entries_per_sec: f64,
    /// Key+value bytes the caller asked to store — the write-amplification
    /// denominator.
    pub payload_bytes: u64,
    /// Physical store bytes written during the load (the numerator).
    pub load_bytes_written: u64,
    pub write_amplification: f64,
    pub bytes_written_per_commit: f64,
    // Run phase (mixed op stream, per-op versions).
    pub run_ops: u64,
    pub ops_per_sec: f64,
    pub latencies: Vec<VerbLatency>,
    // Structure shape after the run.
    pub nodes: u64,
    pub height: u32,
    pub entries: u64,
    pub leaf_occupancy: f64,
    pub avg_node_bytes: f64,
    // Storage accounting over the whole cell.
    pub logical_bytes: u64,
    pub unique_bytes: u64,
    pub unique_pages: u64,
    pub share_ratio: f64,
    pub dedup_savings: f64,
    pub bytes_written: u64,
    // Cache effectiveness.
    pub node_cache_hit_rate: f64,
    pub store_hit_rate: f64,
    pub page_cache_hit_rate: f64,
    // Verified reads (schema v4, Figure 12): sampled proof cost.
    pub proof_count: u64,
    pub proof_bytes_avg: f64,
    pub proof_verify_us_p50: f64,
    pub vscan_count: u64,
    pub vscan_bytes_avg: f64,
    pub vscan_verify_us_p50: f64,
}

/// One experiment cell: a workload on a backend, across all structures.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    pub schema_version: u64,
    /// Stable artifact key, e.g. `"ycsb_mem"`; the file name is
    /// `BENCH_<experiment>.json`.
    pub experiment: String,
    pub workload: String,
    pub backend: String,
    pub scale: f64,
    pub records: u64,
    pub ops: u64,
    pub seed: u64,
    pub node_bytes: u64,
    /// SHA-256 hashing throughput (MB/s) of the machine that produced this
    /// report, measured alongside the experiments. `bench-diff` divides
    /// throughput by the calibration ratio of the two artifacts, so a
    /// baseline committed from a fast laptop still gates meaningfully on a
    /// slower CI runner (and vice versa).
    pub calibration_hash_mbps: f64,
    /// Active SHA-256 implementation (`scalar`, `sha-ni`, `neon`) — part of
    /// the measurement configuration: accelerated and scalar runs are not
    /// comparable.
    pub sha256_backend: String,
    /// POS-Tree sliding-window chunker (`buzhash`, `gear`). Different
    /// chunkers place different boundaries and produce different trees.
    pub chunker: String,
    /// Branch-head shard count the engine ran with (`SIRI_SHARDS`; 1 =
    /// the classic single-slot head). Sharded commits publish manifest
    /// pages and contend differently, so the count is measurement
    /// configuration.
    pub shards: u64,
    /// Whether adaptive re-sharding was enabled (`SIRI_SHARDS=adaptive`);
    /// `shards` then records the initial count.
    pub adaptive_sharding: bool,
    pub indexes: Vec<IndexReport>,
}

impl Report {
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.experiment)
    }

    /// Write the JSON artifact into `dir`, returning its path.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json().render() + "\n")?;
        Ok(path)
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::u64(self.schema_version)),
            ("experiment".into(), Json::str(&self.experiment)),
            ("workload".into(), Json::str(&self.workload)),
            ("backend".into(), Json::str(&self.backend)),
            ("scale".into(), Json::num(self.scale)),
            ("records".into(), Json::u64(self.records)),
            ("ops".into(), Json::u64(self.ops)),
            ("seed".into(), Json::u64(self.seed)),
            ("node_bytes".into(), Json::u64(self.node_bytes)),
            ("calibration_hash_mbps".into(), Json::num(self.calibration_hash_mbps)),
            ("sha256_backend".into(), Json::str(&self.sha256_backend)),
            ("chunker".into(), Json::str(&self.chunker)),
            ("shards".into(), Json::u64(self.shards)),
            ("adaptive_sharding".into(), Json::Bool(self.adaptive_sharding)),
            ("indexes".into(), Json::Arr(self.indexes.iter().map(IndexReport::to_json).collect())),
        ])
    }

    /// Parse and validate a BENCH artifact. Strict: a missing required
    /// field is an error, so schema drift is caught at the first parse,
    /// not deep inside a CI comparison.
    pub fn parse(text: &str) -> Result<Report, String> {
        Self::from_json(&Json::parse(text)?)
    }

    pub fn from_json(doc: &Json) -> Result<Report, String> {
        let schema_version = req_u64(doc, "schema_version")?;
        if schema_version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (this build reads \
                 {BENCH_SCHEMA_VERSION})"
            ));
        }
        let indexes = doc
            .get("indexes")
            .and_then(Json::as_arr)
            .ok_or("missing field `indexes`")?
            .iter()
            .map(IndexReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if indexes.is_empty() {
            return Err("`indexes` must not be empty".into());
        }
        Ok(Report {
            schema_version,
            experiment: req_str(doc, "experiment")?,
            workload: req_str(doc, "workload")?,
            backend: req_str(doc, "backend")?,
            scale: req_f64(doc, "scale")?,
            records: req_u64(doc, "records")?,
            ops: req_u64(doc, "ops")?,
            seed: req_u64(doc, "seed")?,
            node_bytes: req_u64(doc, "node_bytes")?,
            calibration_hash_mbps: req_f64(doc, "calibration_hash_mbps")?,
            sha256_backend: req_str(doc, "sha256_backend")?,
            chunker: req_str(doc, "chunker")?,
            shards: req_u64(doc, "shards")?,
            adaptive_sharding: req_bool(doc, "adaptive_sharding")?,
            indexes,
        })
    }

    /// The human rendering: a summary table plus a per-verb latency table.
    pub fn to_tables(&self) -> Vec<Table> {
        let mut summary = Table::new(
            format!(
                "BENCH {} — {} on {} ({} records, {} ops)",
                self.experiment, self.workload, self.backend, self.records, self.ops
            ),
            &[
                "index",
                "load_kops",
                "run_kops",
                "write_amp",
                "nodes",
                "height",
                "occupancy",
                "raw_mib",
                "dedup_mib",
                "share",
                "node_cache",
                "proof_b",
                "vfy_p50",
            ],
        );
        let mut latency = Table::new(
            format!("BENCH {} — latency percentiles (µs)", self.experiment),
            &["index", "verb", "count", "p50", "p95", "p99"],
        );
        for ix in &self.indexes {
            summary.row(vec![
                ix.index.clone(),
                format!("{:.1}", ix.load_entries_per_sec / 1e3),
                format!("{:.1}", ix.ops_per_sec / 1e3),
                format!("{:.2}", ix.write_amplification),
                ix.nodes.to_string(),
                ix.height.to_string(),
                format!("{:.1}", ix.leaf_occupancy),
                mib(ix.logical_bytes),
                mib(ix.unique_bytes),
                ratio(ix.share_ratio),
                ratio(ix.node_cache_hit_rate),
                format!("{:.0}", ix.proof_bytes_avg),
                format!("{:.1}", ix.proof_verify_us_p50),
            ]);
            for lat in &ix.latencies {
                latency.row(vec![
                    ix.index.clone(),
                    lat.verb.clone(),
                    lat.count.to_string(),
                    format!("{:.1}", lat.p50_us),
                    format!("{:.1}", lat.p95_us),
                    format!("{:.1}", lat.p99_us),
                ]);
            }
        }
        vec![summary, latency]
    }
}

impl IndexReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("index".into(), Json::str(&self.index)),
            (
                "load".into(),
                Json::Obj(vec![
                    ("entries".into(), Json::u64(self.load_entries)),
                    ("commits".into(), Json::u64(self.load_commits)),
                    ("entries_per_sec".into(), Json::num(self.load_entries_per_sec)),
                    ("payload_bytes".into(), Json::u64(self.payload_bytes)),
                    ("bytes_written".into(), Json::u64(self.load_bytes_written)),
                    ("write_amplification".into(), Json::num(self.write_amplification)),
                    ("bytes_written_per_commit".into(), Json::num(self.bytes_written_per_commit)),
                ]),
            ),
            (
                "run".into(),
                Json::Obj(vec![
                    ("ops".into(), Json::u64(self.run_ops)),
                    ("ops_per_sec".into(), Json::num(self.ops_per_sec)),
                    (
                        "latency_us".into(),
                        Json::Arr(
                            self.latencies
                                .iter()
                                .map(|l| {
                                    Json::Obj(vec![
                                        ("verb".into(), Json::str(&l.verb)),
                                        ("count".into(), Json::u64(l.count)),
                                        ("p50".into(), Json::num(l.p50_us)),
                                        ("p95".into(), Json::num(l.p95_us)),
                                        ("p99".into(), Json::num(l.p99_us)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "structure".into(),
                Json::Obj(vec![
                    ("nodes".into(), Json::u64(self.nodes)),
                    ("height".into(), Json::u64(self.height as u64)),
                    ("entries".into(), Json::u64(self.entries)),
                    ("leaf_occupancy".into(), Json::num(self.leaf_occupancy)),
                    ("avg_node_bytes".into(), Json::num(self.avg_node_bytes)),
                ]),
            ),
            (
                "storage".into(),
                Json::Obj(vec![
                    ("logical_bytes".into(), Json::u64(self.logical_bytes)),
                    ("unique_bytes".into(), Json::u64(self.unique_bytes)),
                    ("unique_pages".into(), Json::u64(self.unique_pages)),
                    ("share_ratio".into(), Json::num(self.share_ratio)),
                    ("dedup_savings".into(), Json::num(self.dedup_savings)),
                    ("bytes_written".into(), Json::u64(self.bytes_written)),
                ]),
            ),
            (
                "caches".into(),
                Json::Obj(vec![
                    ("node_cache_hit_rate".into(), Json::num(self.node_cache_hit_rate)),
                    ("store_hit_rate".into(), Json::num(self.store_hit_rate)),
                    ("page_cache_hit_rate".into(), Json::num(self.page_cache_hit_rate)),
                ]),
            ),
            (
                "proofs".into(),
                Json::Obj(vec![
                    ("membership_count".into(), Json::u64(self.proof_count)),
                    ("membership_bytes_avg".into(), Json::num(self.proof_bytes_avg)),
                    ("membership_verify_us_p50".into(), Json::num(self.proof_verify_us_p50)),
                    ("scan_count".into(), Json::u64(self.vscan_count)),
                    ("scan_bytes_avg".into(), Json::num(self.vscan_bytes_avg)),
                    ("scan_verify_us_p50".into(), Json::num(self.vscan_verify_us_p50)),
                ]),
            ),
        ])
    }

    fn from_json(doc: &Json) -> Result<IndexReport, String> {
        let section = |name: &str| -> Result<&Json, String> {
            doc.get(name).ok_or(format!("missing section `{name}`"))
        };
        let (load, run, structure, storage, caches, proofs) = (
            section("load")?,
            section("run")?,
            section("structure")?,
            section("storage")?,
            section("caches")?,
            section("proofs")?,
        );
        let latencies = run
            .get("latency_us")
            .and_then(Json::as_arr)
            .ok_or("missing field `run.latency_us`")?
            .iter()
            .map(|l| {
                Ok(VerbLatency {
                    verb: req_str(l, "verb")?,
                    count: req_u64(l, "count")?,
                    p50_us: req_f64(l, "p50")?,
                    p95_us: req_f64(l, "p95")?,
                    p99_us: req_f64(l, "p99")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(IndexReport {
            index: req_str(doc, "index")?,
            load_entries: req_u64(load, "entries")?,
            load_commits: req_u64(load, "commits")?,
            load_entries_per_sec: req_f64(load, "entries_per_sec")?,
            payload_bytes: req_u64(load, "payload_bytes")?,
            load_bytes_written: req_u64(load, "bytes_written")?,
            write_amplification: req_f64(load, "write_amplification")?,
            bytes_written_per_commit: req_f64(load, "bytes_written_per_commit")?,
            run_ops: req_u64(run, "ops")?,
            ops_per_sec: req_f64(run, "ops_per_sec")?,
            latencies,
            nodes: req_u64(structure, "nodes")?,
            height: req_u64(structure, "height")? as u32,
            entries: req_u64(structure, "entries")?,
            leaf_occupancy: req_f64(structure, "leaf_occupancy")?,
            avg_node_bytes: req_f64(structure, "avg_node_bytes")?,
            logical_bytes: req_u64(storage, "logical_bytes")?,
            unique_bytes: req_u64(storage, "unique_bytes")?,
            unique_pages: req_u64(storage, "unique_pages")?,
            share_ratio: req_f64(storage, "share_ratio")?,
            dedup_savings: req_f64(storage, "dedup_savings")?,
            bytes_written: req_u64(storage, "bytes_written")?,
            node_cache_hit_rate: req_f64(caches, "node_cache_hit_rate")?,
            store_hit_rate: req_f64(caches, "store_hit_rate")?,
            page_cache_hit_rate: req_f64(caches, "page_cache_hit_rate")?,
            proof_count: req_u64(proofs, "membership_count")?,
            proof_bytes_avg: req_f64(proofs, "membership_bytes_avg")?,
            proof_verify_us_p50: req_f64(proofs, "membership_verify_us_p50")?,
            vscan_count: req_u64(proofs, "scan_count")?,
            vscan_bytes_avg: req_f64(proofs, "scan_bytes_avg")?,
            vscan_verify_us_p50: req_f64(proofs, "scan_verify_us_p50")?,
        })
    }
}

fn req_f64(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key).and_then(Json::as_f64).ok_or(format!("missing numeric field `{key}`"))
}

fn req_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key).and_then(Json::as_u64).ok_or(format!("missing integer field `{key}`"))
}

fn req_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(String::from)
        .ok_or(format!("missing string field `{key}`"))
}

fn req_bool(doc: &Json, key: &str) -> Result<bool, String> {
    doc.get(key).and_then(Json::as_bool).ok_or(format!("missing boolean field `{key}`"))
}

// ---------------------------------------------------------------------------
// Comparison — the bench-diff perf gate
// ---------------------------------------------------------------------------

/// Thresholds of the regression gate, as fractions (0.2 = 20%).
#[derive(Debug, Clone, Copy)]
pub struct DiffThresholds {
    /// Max tolerated throughput drop before the gate fails.
    pub max_regress: f64,
    /// Max tolerated growth of space/write-amplification metrics.
    pub max_space: f64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds { max_regress: 0.20, max_space: 0.10 }
    }
}

/// One gate violation: `metric` moved from `base` to `new` past the
/// threshold, in experiment `experiment` on structure `index`.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    pub experiment: String,
    pub index: String,
    pub metric: &'static str,
    pub base: f64,
    pub new: f64,
    pub delta_pct: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: {} {:+.1}% ({:.1} -> {:.1})",
            self.experiment, self.index, self.metric, self.delta_pct, self.base, self.new
        )
    }
}

/// The two artifacts describe the same measurement *configuration* —
/// comparing throughput or space across different datasets is
/// meaningless. Returns a description of the first mismatch, if any;
/// `bench-diff` refuses such pairs (the fix is regenerating the
/// baseline, not reading bogus deltas).
pub fn config_mismatch(base: &Report, new: &Report) -> Option<String> {
    let fields: [(&str, String, String); 11] = [
        ("experiment", base.experiment.clone(), new.experiment.clone()),
        ("workload", base.workload.clone(), new.workload.clone()),
        ("backend", base.backend.clone(), new.backend.clone()),
        ("scale", base.scale.to_string(), new.scale.to_string()),
        ("records", base.records.to_string(), new.records.to_string()),
        ("ops", base.ops.to_string(), new.ops.to_string()),
        ("seed", base.seed.to_string(), new.seed.to_string()),
        // A scalar-hashing run against a sha-ni baseline (or a gear tree
        // against a buzhash one) measures a different system; the
        // calibration clamp cannot absorb that, so refuse outright.
        ("sha256_backend", base.sha256_backend.clone(), new.sha256_backend.clone()),
        ("chunker", base.chunker.clone(), new.chunker.clone()),
        // Same refusal rule for the branch-head partition: a sharded run
        // (per-range CAS slots, manifest pages per commit) is a different
        // system than the single-slot engine.
        ("shards", base.shards.to_string(), new.shards.to_string()),
        (
            "adaptive_sharding",
            base.adaptive_sharding.to_string(),
            new.adaptive_sharding.to_string(),
        ),
    ];
    fields
        .iter()
        .find(|(_, b, n)| b != n)
        .map(|(name, b, n)| format!("config mismatch on `{name}`: baseline {b}, new {n}"))
}

/// Compare one experiment's new report against its baseline. Returns the
/// per-metric delta table and every threshold violation.
///
/// Gated metrics: `ops_per_sec` and `load.entries_per_sec` may not *drop*
/// by more than `max_regress`; `storage.unique_bytes` and
/// `load.write_amplification` may not *grow* by more than `max_space`
/// (the space metrics are deterministic for a fixed seed and scale, so
/// they gate tightly even on noisy CI runners). An index present in the
/// baseline but missing from the new report is a violation by itself.
///
/// Throughput is compared after normalizing by the two artifacts'
/// `calibration_hash_mbps`, so "regression" means *slower relative to the
/// producing machine's speed*, not "this runner is a slower machine than
/// the one that committed the baseline".
pub fn diff_reports(
    base: &Report,
    new: &Report,
    thresholds: DiffThresholds,
) -> (Table, Vec<Regression>) {
    // Scale the new side's throughput into the baseline machine's units.
    // The factor is clamped: hashing speed is a first-order CPU proxy, not
    // a law — a machine with SHA hardware acceleration can hash 4× faster
    // without running index ops 4× faster, and an unbounded factor would
    // turn that divergence into fake regressions (or fake passes). Past
    // the clamp, refresh the baseline from the same environment instead
    // (DESIGN.md §6).
    let calibration = if base.calibration_hash_mbps > 0.0 && new.calibration_hash_mbps > 0.0 {
        (base.calibration_hash_mbps / new.calibration_hash_mbps).clamp(0.25, 4.0)
    } else {
        1.0
    };
    let mut table = Table::new(
        format!(
            "bench-diff {} (base -> new, %, throughput normalized x{calibration:.2})",
            base.experiment
        ),
        &["index", "run_kops", "load_kops", "dedup_mib", "write_amp"],
    );
    let mut violations = Vec::new();
    for b in &base.indexes {
        let Some(n) = new.indexes.iter().find(|n| n.index == b.index) else {
            violations.push(Regression {
                experiment: base.experiment.clone(),
                index: b.index.clone(),
                metric: "missing-index",
                base: 1.0,
                new: 0.0,
                delta_pct: -100.0,
            });
            continue;
        };
        let pct = |base: f64, new: f64| {
            if base == 0.0 {
                0.0
            } else {
                (new - base) / base * 100.0
            }
        };
        table.row(vec![
            b.index.clone(),
            format!("{:+.1}", pct(b.ops_per_sec, n.ops_per_sec * calibration)),
            format!("{:+.1}", pct(b.load_entries_per_sec, n.load_entries_per_sec * calibration)),
            format!("{:+.1}", pct(b.unique_bytes as f64, n.unique_bytes as f64)),
            format!("{:+.1}", pct(b.write_amplification, n.write_amplification)),
        ]);
        let mut gate = |metric: &'static str, base_v: f64, new_v: f64, bad_drop: bool, max: f64| {
            if base_v <= 0.0 {
                return; // nothing to compare against
            }
            let delta = (new_v - base_v) / base_v;
            let violated = if bad_drop { delta < -max } else { delta > max };
            if violated {
                violations.push(Regression {
                    experiment: base.experiment.clone(),
                    index: b.index.clone(),
                    metric,
                    base: base_v,
                    new: new_v,
                    delta_pct: delta * 100.0,
                });
            }
        };
        gate(
            "ops_per_sec",
            b.ops_per_sec,
            n.ops_per_sec * calibration,
            true,
            thresholds.max_regress,
        );
        gate(
            "load.entries_per_sec",
            b.load_entries_per_sec,
            n.load_entries_per_sec * calibration,
            true,
            thresholds.max_regress,
        );
        gate(
            "storage.unique_bytes",
            b.unique_bytes as f64,
            n.unique_bytes as f64,
            false,
            thresholds.max_space,
        );
        gate(
            "load.write_amplification",
            b.write_amplification,
            n.write_amplification,
            false,
            thresholds.max_space,
        );
    }
    (table, violations)
}

/// Build an [`IndexReport`] from the raw measurements of one grid cell.
/// Pure arithmetic, kept here so the derivation is unit-testable.
#[allow(clippy::too_many_arguments)]
pub fn index_report(
    index: String,
    load: LoadMeasurement,
    run_ops: u64,
    run_nanos: u64,
    latencies: Vec<VerbLatency>,
    structure: siri::StructureReport,
    store: siri::StoreStats,
    node_cache: siri::CacheStats,
) -> IndexReport {
    let per_sec = |count: u64, nanos: u64| {
        if nanos == 0 {
            0.0
        } else {
            count as f64 / (nanos as f64 / 1e9)
        }
    };
    IndexReport {
        index,
        load_entries: load.entries,
        load_commits: load.commits,
        load_entries_per_sec: per_sec(load.entries, load.nanos),
        payload_bytes: load.payload_bytes,
        load_bytes_written: load.bytes_written,
        write_amplification: if load.payload_bytes == 0 {
            0.0
        } else {
            load.bytes_written as f64 / load.payload_bytes as f64
        },
        bytes_written_per_commit: if load.commits == 0 {
            0.0
        } else {
            load.bytes_written as f64 / load.commits as f64
        },
        run_ops,
        ops_per_sec: per_sec(run_ops, run_nanos),
        latencies,
        nodes: structure.nodes,
        height: structure.height,
        entries: structure.entries,
        leaf_occupancy: structure.leaf_occupancy,
        avg_node_bytes: structure.avg_node_bytes(),
        logical_bytes: store.logical_bytes,
        unique_bytes: store.unique_bytes,
        unique_pages: store.unique_pages,
        share_ratio: store.share_ratio(),
        dedup_savings: store.dedup_savings(),
        bytes_written: store.bytes_written,
        node_cache_hit_rate: node_cache.hit_ratio(),
        store_hit_rate: store.hit_rate(),
        page_cache_hit_rate: store.cache_hit_rate(),
        // Verified-read cost is measured separately (it re-walks the tree
        // after the counter snapshots) and stamped in by the caller.
        proof_count: 0,
        proof_bytes_avg: 0.0,
        proof_verify_us_p50: 0.0,
        vscan_count: 0,
        vscan_bytes_avg: 0.0,
        vscan_verify_us_p50: 0.0,
    }
}

/// Raw load-phase measurements of one grid cell.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadMeasurement {
    pub entries: u64,
    pub commits: u64,
    pub nanos: u64,
    pub payload_bytes: u64,
    pub bytes_written: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index(name: &str, ops_per_sec: f64, unique_bytes: u64) -> IndexReport {
        IndexReport {
            index: name.into(),
            load_entries: 1_000,
            load_commits: 4,
            load_entries_per_sec: 50_000.0,
            payload_bytes: 256_000,
            load_bytes_written: 512_000,
            write_amplification: 2.0,
            bytes_written_per_commit: 128_000.0,
            run_ops: 500,
            ops_per_sec,
            latencies: vec![VerbLatency {
                verb: "read".into(),
                count: 500,
                p50_us: 1.5,
                p95_us: 4.0,
                p99_us: 9.0,
            }],
            nodes: 100,
            height: 3,
            entries: 1_000,
            leaf_occupancy: 10.0,
            avg_node_bytes: 1024.0,
            logical_bytes: 1_000_000,
            unique_bytes,
            unique_pages: 100,
            share_ratio: 0.5,
            dedup_savings: 0.5,
            bytes_written: 512_000,
            node_cache_hit_rate: 0.9,
            store_hit_rate: 1.0,
            page_cache_hit_rate: 1.0,
            proof_count: 32,
            proof_bytes_avg: 2_048.0,
            proof_verify_us_p50: 6.5,
            vscan_count: 8,
            vscan_bytes_avg: 9_216.0,
            vscan_verify_us_p50: 40.0,
        }
    }

    fn sample_report(ops_per_sec: f64, unique_bytes: u64) -> Report {
        Report {
            schema_version: BENCH_SCHEMA_VERSION,
            experiment: "ycsb_mem".into(),
            workload: "ycsb".into(),
            backend: "mem".into(),
            scale: 0.01,
            records: 1_000,
            ops: 500,
            seed: 42,
            node_bytes: 1024,
            calibration_hash_mbps: 800.0,
            sha256_backend: "scalar".into(),
            chunker: "buzhash".into(),
            shards: 1,
            adaptive_sharding: false,
            indexes: vec![
                sample_index("pos-tree", ops_per_sec, unique_bytes),
                sample_index("mpt", ops_per_sec * 2.0, unique_bytes),
            ],
        }
    }

    #[test]
    fn report_json_round_trips_exactly() {
        let report = sample_report(80_000.0, 400_000);
        let back = Report::parse(&report.to_json().render()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn parse_rejects_missing_required_fields() {
        let report = sample_report(80_000.0, 400_000);
        let mut doc = report.to_json();
        // Drop `run.ops_per_sec` of the first index — the parser must
        // refuse rather than default, or the artifact format can drift.
        if let Json::Obj(fields) = &mut doc {
            let indexes = fields.iter_mut().find(|(k, _)| k == "indexes").unwrap();
            if let Json::Arr(items) = &mut indexes.1 {
                if let Json::Obj(ix) = &mut items[0] {
                    let run = ix.iter_mut().find(|(k, _)| k == "run").unwrap();
                    if let Json::Obj(run_fields) = &mut run.1 {
                        run_fields.retain(|(k, _)| k != "ops_per_sec");
                    }
                }
            }
        }
        let err = Report::from_json(&doc).unwrap_err();
        assert!(err.contains("ops_per_sec"), "{err}");
    }

    #[test]
    fn parse_rejects_foreign_schema_version() {
        let mut report = sample_report(80_000.0, 400_000);
        report.schema_version = BENCH_SCHEMA_VERSION + 1;
        let err = Report::parse(&report.to_json().render()).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let base = sample_report(80_000.0, 400_000);
        let (_, violations) = diff_reports(&base, &base.clone(), DiffThresholds::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn fifty_percent_throughput_drop_fails_the_gate() {
        let base = sample_report(80_000.0, 400_000);
        let new = sample_report(40_000.0, 400_000);
        let (_, violations) =
            diff_reports(&base, &new, DiffThresholds { max_regress: 0.20, max_space: 0.10 });
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().all(|v| v.metric == "ops_per_sec"));
        assert!((violations[0].delta_pct - -50.0).abs() < 1e-9);
    }

    #[test]
    fn drop_within_threshold_passes() {
        let base = sample_report(80_000.0, 400_000);
        let new = sample_report(80_000.0 * 0.85, 400_000);
        let (_, violations) =
            diff_reports(&base, &new, DiffThresholds { max_regress: 0.20, max_space: 0.10 });
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn throughput_gains_never_fail() {
        let base = sample_report(80_000.0, 400_000);
        let new = sample_report(400_000.0, 400_000);
        let (_, violations) = diff_reports(&base, &new, DiffThresholds::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn space_inflation_fails_the_gate() {
        let base = sample_report(80_000.0, 400_000);
        let new = sample_report(80_000.0, 480_000); // +20% unique bytes
        let (_, violations) =
            diff_reports(&base, &new, DiffThresholds { max_regress: 0.20, max_space: 0.10 });
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().all(|v| v.metric == "storage.unique_bytes"));
    }

    #[test]
    fn calibration_normalizes_machine_speed() {
        // The new artifact came from a machine half as fast (calibration
        // 400 vs 800) and measured half the throughput — after
        // normalization that is *no* regression.
        let base = sample_report(80_000.0, 400_000);
        let mut new = sample_report(40_000.0, 400_000);
        new.calibration_hash_mbps = 400.0;
        let (_, violations) = diff_reports(&base, &new, DiffThresholds::default());
        assert!(violations.is_empty(), "{violations:?}");

        // Same slow machine, but throughput *also* halved relative to it:
        // a genuine regression survives the normalization.
        let mut regressed = sample_report(20_000.0, 400_000);
        regressed.calibration_hash_mbps = 400.0;
        let (_, violations) = diff_reports(&base, &regressed, DiffThresholds::default());
        assert!(violations.iter().any(|v| v.metric == "ops_per_sec"), "{violations:?}");
    }

    #[test]
    fn config_mismatch_is_detected() {
        let base = sample_report(80_000.0, 400_000);
        assert_eq!(config_mismatch(&base, &base.clone()), None);
        let mut other_scale = base.clone();
        other_scale.scale = 0.02;
        let msg = config_mismatch(&base, &other_scale).unwrap();
        assert!(msg.contains("scale"), "{msg}");
        let mut other_records = base.clone();
        other_records.records += 1;
        assert!(config_mismatch(&base, &other_records).unwrap().contains("records"));
        // Calibration is machine identity, not configuration.
        let mut other_machine = base.clone();
        other_machine.calibration_hash_mbps = 99.0;
        assert_eq!(config_mismatch(&base, &other_machine), None);
    }

    #[test]
    fn hash_backend_and_chunker_mismatches_refuse_comparison() {
        let base = sample_report(80_000.0, 400_000);
        let mut accel = base.clone();
        accel.sha256_backend = "sha-ni".into();
        let msg = config_mismatch(&base, &accel).unwrap();
        assert!(msg.contains("sha256_backend"), "{msg}");
        let mut gear = base.clone();
        gear.chunker = "gear".into();
        assert!(config_mismatch(&base, &gear).unwrap().contains("chunker"));
    }

    #[test]
    fn shard_config_mismatches_refuse_comparison() {
        let base = sample_report(80_000.0, 400_000);
        let mut sharded = base.clone();
        sharded.shards = 8;
        let msg = config_mismatch(&base, &sharded).unwrap();
        assert!(msg.contains("shards"), "{msg}");
        let mut adaptive = base.clone();
        adaptive.adaptive_sharding = true;
        assert!(config_mismatch(&base, &adaptive).unwrap().contains("adaptive_sharding"));
    }

    #[test]
    fn missing_index_is_a_violation() {
        let base = sample_report(80_000.0, 400_000);
        let mut new = sample_report(80_000.0, 400_000);
        new.indexes.retain(|ix| ix.index != "mpt");
        let (_, violations) = diff_reports(&base, &new, DiffThresholds::default());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "missing-index");
        assert_eq!(violations[0].index, "mpt");
    }
}
