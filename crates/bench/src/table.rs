//! Minimal aligned-text table printer (the harness's only "plotting").

/// A printable results table; also emits CSV for post-processing.
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let w = self.widths();
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}", self.title);
        let line: String = w.iter().map(|x| "-".repeat(x + 2)).collect::<Vec<_>>().join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:>width$} ", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(out, "{line}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Render as CSV (one block per table, prefixed by a comment line).
    pub fn render_csv(&self) -> String {
        let mut out = format!("# {}\n{}\n", self.title, self.headers.join(","));
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Human formatting helpers shared by the experiments.
pub fn kops(ops: usize, nanos: u64) -> String {
    if nanos == 0 {
        return "inf".into();
    }
    format!("{:.1}", ops as f64 / (nanos as f64 / 1e9) / 1e3)
}

pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

pub fn ratio(x: f64) -> String {
    format!("{x:.3}")
}

pub fn micros(nanos: u64) -> String {
    format!("{:.2}", nanos as f64 / 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_and_csv() {
        let mut t = Table::new("demo", &["a", "metric"]);
        t.row(vec!["1".into(), "10.5".into()]);
        t.row(vec!["200".into(), "7".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("metric"));
        let csv = t.render_csv();
        assert!(csv.starts_with("# demo\na,metric\n1,10.5\n"));
    }

    #[test]
    fn formatters() {
        assert_eq!(kops(1000, 1_000_000_000), "1.0");
        assert_eq!(mib(1024 * 1024), "1.00");
        assert_eq!(ratio(0.51234), "0.512");
        assert_eq!(micros(1500), "1.50");
    }
}
