//! Minimal aligned-text table printer plus the hand-rolled JSON value type
//! the BENCH report artifacts are written with (and parsed back from — the
//! build has no registry access, so no serde).

/// A printable results table; also emits CSV for post-processing.
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let w = self.widths();
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}", self.title);
        let line: String = w.iter().map(|x| "-".repeat(x + 2)).collect::<Vec<_>>().join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:>width$} ", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(out, "{line}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Render as CSV (one block per table, prefixed by a comment line).
    /// Cells holding a comma, quote or newline are quoted per RFC 4180,
    /// with embedded quotes doubled.
    pub fn render_csv(&self) -> String {
        let fmt_row =
            |cells: &[String]| cells.iter().map(|c| csv_escape(c)).collect::<Vec<_>>().join(",");
        let mut out = format!("# {}\n{}\n", self.title, fmt_row(&self.headers));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// RFC 4180 cell escaping: quote when the cell contains a delimiter, a
/// quote or a line break, doubling embedded quotes.
fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Human formatting helpers shared by the experiments.
pub fn kops(ops: usize, nanos: u64) -> String {
    if nanos == 0 {
        return "inf".into();
    }
    format!("{:.1}", ops as f64 / (nanos as f64 / 1e9) / 1e3)
}

pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

pub fn ratio(x: f64) -> String {
    format!("{x:.3}")
}

pub fn micros(nanos: u64) -> String {
    format!("{:.2}", nanos as f64 / 1e3)
}

// ---------------------------------------------------------------------------
// JSON — the BENCH artifact encoding
// ---------------------------------------------------------------------------

/// A JSON value. Objects keep insertion order (`Vec`, not a map) so the
/// emitted artifacts are byte-stable for a given report — diffs of two
/// BENCH files are then meaningful line diffs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// `u64` counters pass through `f64`; exact below 2^53, which covers
    /// every counter the reports emit.
    pub fn u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Object field lookup; `None` on non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0 && n.fract() == 0.0).map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize with two-space indentation (the artifact format: BENCH
    /// files are meant to be read and diffed by humans too).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest round-trip repr; integers print without ".0".
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                    item.write(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Errors carry a byte offset — enough to
    /// debug a hand-edited baseline file.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not emitted by the writer;
                        // lone surrogates decode to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe
                // to do bytewise until the next ASCII quote/backslash).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad UTF-8")?);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_and_csv() {
        let mut t = Table::new("demo", &["a", "metric"]);
        t.row(vec!["1".into(), "10.5".into()]);
        t.row(vec!["200".into(), "7".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("metric"));
        let csv = t.render_csv();
        assert!(csv.starts_with("# demo\na,metric\n1,10.5\n"));
    }

    #[test]
    fn csv_escapes_commas_quotes_and_newlines() {
        let mut t = Table::new("esc", &["plain", "tricky"]);
        t.row(vec!["ok".into(), "a,b".into()]);
        t.row(vec!["say \"hi\"".into(), "line1\nline2".into()]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.splitn(4, '\n').collect();
        assert_eq!(lines[1], "plain,tricky");
        assert_eq!(lines[2], "ok,\"a,b\"");
        assert_eq!(lines[3], "\"say \"\"hi\"\"\",\"line1\nline2\"\n");
    }

    #[test]
    fn csv_escapes_header_cells_too() {
        let mut t = Table::new("hdr", &["metric, unit"]);
        t.row(vec!["5".into()]);
        assert_eq!(t.render_csv(), "# hdr\n\"metric, unit\"\n5\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(kops(1000, 1_000_000_000), "1.0");
        assert_eq!(mib(1024 * 1024), "1.00");
        assert_eq!(ratio(0.51234), "0.512");
        assert_eq!(micros(1500), "1.50");
    }

    #[test]
    fn json_round_trips() {
        let doc = Json::Obj(vec![
            ("schema_version".into(), Json::u64(1)),
            ("name".into(), Json::str("ycsb \"smoke\"\n")),
            ("ratio".into(), Json::num(0.125)),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            ("items".into(), Json::Arr(vec![Json::u64(3), Json::str("x"), Json::Num(-2.5e3)])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("schema_version").unwrap().as_u64(), Some(1));
        assert_eq!(back.get("name").unwrap().as_str(), Some("ycsb \"smoke\"\n"));
        assert_eq!(back.get("items").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn json_parses_foreign_formatting() {
        let back = Json::parse("  {\"a\":[1,2.5,-3e2],\"b\":{\"c\":\"\\u0041\\t\"}} ").unwrap();
        assert_eq!(back.get("a").unwrap().as_arr().unwrap()[2], Json::Num(-300.0));
        assert_eq!(back.get("b").unwrap().get("c").unwrap().as_str(), Some("A\t"));
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn json_non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn as_u64_guards_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::str("3").as_u64(), None);
    }
}
