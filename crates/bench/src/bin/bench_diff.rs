//! `bench-diff` — the perf-regression gate over BENCH artifacts.
//!
//! Compares a new set of `BENCH_*.json` reports against a baseline set
//! (two files, or two directories matched by file name) and exits
//! non-zero when throughput regressed or space inflated past the
//! thresholds. CI runs this against the committed `bench/baselines/`
//! snapshot after every `repro --smoke`; see DESIGN.md §6 for the
//! baseline-update procedure.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use siri_bench::report::config_mismatch;
use siri_bench::{diff_reports, DiffThresholds, Report};

const HELP: &str = "\
bench-diff — compare BENCH report artifacts and gate on regressions

USAGE:
    bench-diff <BASE> <NEW> [FLAGS]

    BASE and NEW are either two BENCH_*.json files or two directories;
    directories are matched by file name (every baseline artifact must
    exist on the NEW side).

FLAGS:
    --max-regress P   max tolerated throughput drop before failing;
                      accepts `20%`, `20` or `0.2` — all twenty percent
                      (values >= 1 are percentages; default 20%)
    --max-space P     max tolerated growth of deterministic space
                      metrics: unique bytes, write amplification
                      (default 10%)
    -h, --help        this text

EXIT STATUS:
    0  within thresholds        1  regression detected        2  usage/IO
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut thresholds = DiffThresholds::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regress" => {
                i += 1;
                thresholds.max_regress = match args.get(i).map(|a| parse_pct(a)) {
                    Some(Some(v)) => v,
                    _ => return usage("--max-regress takes a percentage"),
                };
            }
            "--max-space" => {
                i += 1;
                thresholds.max_space = match args.get(i).map(|a| parse_pct(a)) {
                    Some(Some(v)) => v,
                    _ => return usage("--max-space takes a percentage"),
                };
            }
            "-h" | "--help" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                return usage(&format!("unknown flag {flag}"));
            }
            path => paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    let [base, new] = paths.as_slice() else {
        return usage("expected exactly two paths: <BASE> <NEW>");
    };

    let pairs = match collect_pairs(base, new) {
        Ok(pairs) => pairs,
        Err(e) => {
            eprintln!("bench-diff: {e}");
            return ExitCode::from(2);
        }
    };
    if pairs.is_empty() {
        eprintln!("bench-diff: no BENCH_*.json artifacts under {}", base.display());
        return ExitCode::from(2);
    }

    let mut violations = Vec::new();
    for (name, base_path, new_path) in &pairs {
        let (base_report, new_report) = match (load(base_path), load(new_path)) {
            (Ok(b), Ok(n)) => (b, n),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("bench-diff: {e}");
                return ExitCode::from(2);
            }
        };
        if let Some(mismatch) = config_mismatch(&base_report, &new_report) {
            eprintln!(
                "bench-diff: {name}: {mismatch} — the artifacts measure different \
                 configurations; regenerate the baseline (DESIGN.md §6)"
            );
            return ExitCode::from(2);
        }
        let (table, mut found) = diff_reports(&base_report, &new_report, thresholds);
        table.print();
        violations.append(&mut found);
    }

    println!(
        "\nbench-diff: {} experiment(s), thresholds: throughput -{:.0}%, space +{:.0}%",
        pairs.len(),
        thresholds.max_regress * 100.0,
        thresholds.max_space * 100.0
    );
    if violations.is_empty() {
        println!("bench-diff: OK — no regressions");
        ExitCode::SUCCESS
    } else {
        println!("bench-diff: FAIL — {} regression(s):", violations.len());
        for v in &violations {
            println!("  {v}");
        }
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("bench-diff: {msg}\n\n{HELP}");
    ExitCode::from(2)
}

/// `20%`, `20` and `0.2` all mean twenty percent: values ≥ 1 (or with an
/// explicit `%`) are percentages, values below 1 are fractions — so a
/// bare `1` is a tight 1% threshold, never a gate-disabling 100%.
fn parse_pct(text: &str) -> Option<f64> {
    let raw = text.strip_suffix('%').unwrap_or(text);
    let v: f64 = raw.parse().ok()?;
    if !(0.0..=1000.0).contains(&v) {
        return None;
    }
    Some(if text.ends_with('%') || v >= 1.0 { v / 100.0 } else { v })
}

fn load(path: &Path) -> Result<Report, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Report::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Resolve the two arguments into (name, base, new) artifact pairs.
/// File vs file is one pair; dir vs dir matches by `BENCH_*.json` name and
/// requires every baseline artifact to exist on the new side.
fn collect_pairs(base: &Path, new: &Path) -> Result<Vec<(String, PathBuf, PathBuf)>, String> {
    match (base.is_dir(), new.is_dir()) {
        (false, false) => {
            let name = base.file_name().unwrap_or_default().to_string_lossy().into_owned();
            Ok(vec![(name, base.to_path_buf(), new.to_path_buf())])
        }
        (true, true) => {
            let mut names: Vec<String> = std::fs::read_dir(base)
                .map_err(|e| format!("cannot read {}: {e}", base.display()))?
                .filter_map(|entry| entry.ok())
                .filter_map(|entry| entry.file_name().into_string().ok())
                .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                .collect();
            names.sort();
            names
                .into_iter()
                .map(|name| {
                    let new_path = new.join(&name);
                    if !new_path.is_file() {
                        return Err(format!(
                            "baseline {name} has no counterpart under {}",
                            new.display()
                        ));
                    }
                    Ok((name.clone(), base.join(&name), new_path))
                })
                .collect()
        }
        _ => Err("BASE and NEW must both be files or both be directories".into()),
    }
}
