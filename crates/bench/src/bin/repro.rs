//! `repro` — regenerates the paper's §5 tables/figures and runs the
//! Table 2 experiment grid with machine-readable BENCH output.
//!
//! Usage:
//! ```text
//! repro <experiment> [--scale F] [--ops N] [--csv]
//! repro grid [--backend mem|file|both] [--out DIR]
//! repro --smoke [--out DIR]
//! repro all
//! ```
//! Experiments: fig1 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
//! fig15 fig16 fig17 fig18 tab3 fig19 fig20 fig21 fig22 bounds
//! concurrency grid.
//!
//! `grid` runs {YCSB, wiki, eth} × {MPT, MBT, POS-Tree, MVMB+} on the
//! selected backends and writes one versioned `BENCH_<workload>_<backend>
//! .json` artifact per cell (see `siri_bench::report` for the schema) next
//! to the usual text tables. `--smoke` is the CI entry point: the same
//! grid at a fixed tiny scale on both backends.
//!
//! `--scale` multiplies the paper's dataset sizes (default 0.05: laptop
//! scale, a couple of minutes for `all`; 1.0 = full paper sizes). Shapes —
//! who wins, slopes, crossovers — are scale-stable; absolute numbers are
//! not expected to match the paper's hardware.

use std::time::Instant;

use siri::workloads::eth::EthConfig;
use siri::workloads::params;
use siri::workloads::wiki::WikiConfig;
use siri::workloads::ycsb::YcsbConfig;
use siri::{
    cost_model, metrics, Entry, FileStoreOptions, Forkbase, FsyncPolicy, IndexFactory, MemStore,
    NomsEngine, PosFactory, PosParams, PosTree, ShardingPolicy, SiriIndex, WriteBatch,
};
use siri_bench::harness::*;
use siri_bench::table::{kops, mib, micros, ratio, Table};
use siri_bench::{for_each_index, grid, Backend, RunConfig};

const HELP: &str = "\
repro — regenerate the paper's §5 experiments

USAGE:
    repro [EXPERIMENT] [FLAGS]

EXPERIMENTS:
    all            every figure/table experiment (default)
    fig1..fig22, tab3, bounds
                   one §5 figure or table
    concurrency    multi-writer Forkbase cells: disjoint-branch commit
                   scaling, same-branch CAS contention (retry counter +
                   model agreement), and group-commit fsync sharing
    grid           the Table 2 grid: {ycsb, wiki, eth} x all four indexes
                   on the selected backends; emits one
                   BENCH_<workload>_<backend>.json artifact per cell

FLAGS:
    --smoke        CI smoke entry point: `grid` on both backends at a
                   fixed tiny scale (scale 0.01, 600 ops, best of 5
                   repetitions)
    --scale F      multiply the paper's dataset sizes (default 0.05)
    --ops N        operations per measured workload (default 5000)
    --reps N       timed repetitions per grid measurement; the best
                   sample is reported (default 1)
    --backend B    grid backends: mem | file | both (default both)
    --threads N    writer-thread ceiling for the concurrency cells
                   (default 4; swept in powers of two)
    --out DIR      directory for BENCH_*.json artifacts (default .)
    --csv          print tables as CSV instead of aligned text
    -h, --help     this text
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = RunConfig::default();
    let mut csv = false;
    let mut smoke = false;
    let mut out_dir = std::path::PathBuf::from(".");
    let mut backends = Backend::BOTH.to_vec();
    let mut experiment = String::from("all");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = args[i].parse().expect("--scale takes a float");
            }
            "--ops" => {
                i += 1;
                cfg.ops = args[i].parse().expect("--ops takes an integer");
            }
            "--reps" => {
                i += 1;
                cfg.reps = args[i].parse().expect("--reps takes an integer");
            }
            "--threads" => {
                i += 1;
                cfg.threads = args[i].parse().expect("--threads takes an integer");
                assert!(cfg.threads > 0, "--threads must be positive");
            }
            "--backend" => {
                i += 1;
                backends = Backend::parse(&args[i]).unwrap_or_else(|| {
                    eprintln!("--backend takes mem, file or both");
                    std::process::exit(2);
                });
            }
            "--out" => {
                i += 1;
                out_dir = std::path::PathBuf::from(&args[i]);
            }
            "--smoke" => smoke = true,
            "--csv" => csv = true,
            "-h" | "--help" => {
                print!("{HELP}");
                return;
            }
            name if !name.starts_with("--") => experiment = name.to_string(),
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if smoke {
        // The fixed CI configuration: tiny but deterministic, both
        // backends, every workload — enough to exercise every code path
        // and produce comparable BENCH artifacts in seconds.
        experiment = "grid".into();
        cfg.scale = 0.01;
        cfg.ops = 600;
        cfg.reps = 5;
        backends = Backend::BOTH.to_vec();
    }

    if experiment == "grid" {
        run_grid(cfg, &backends, &out_dir, csv);
        return;
    }

    let all = [
        "fig1",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "tab3",
        "fig19",
        "fig20",
        "fig21",
        "fig22",
        "bounds",
        "concurrency",
    ];
    let todo: Vec<&str> = if experiment == "all" {
        all.to_vec()
    } else if all.contains(&experiment.as_str()) {
        vec![all[all.iter().position(|e| *e == experiment).unwrap()]]
    } else {
        eprintln!("unknown experiment '{experiment}'; choose one of {all:?}, 'grid' or 'all'");
        std::process::exit(2);
    };

    println!(
        "# repro: scale={} ops={} — shapes are comparable to the paper; absolute numbers are not",
        cfg.scale, cfg.ops
    );
    for exp in todo {
        let started = Instant::now();
        let tables = match exp {
            "fig1" => fig1(cfg),
            "fig6" => fig6(cfg),
            "fig7" => fig7(cfg),
            "fig8" => fig8(cfg),
            "fig9" => fig9(cfg),
            "fig10" => fig10(cfg),
            "fig11" => fig11(cfg),
            "fig12" => fig12(cfg),
            "fig13" => fig13(cfg),
            "fig14" => fig14(cfg),
            "fig15" => fig15(cfg),
            "fig16" => fig16(cfg),
            "fig17" => fig17_18(cfg, None),
            "fig18" => fig17_18(cfg, Some(50)),
            "tab3" => tab3(cfg),
            "fig19" => fig19_20(cfg, AblationKind::ForcedSplit),
            "fig20" => fig19_20(cfg, AblationKind::CopyAll),
            "fig21" => fig21(cfg),
            "fig22" => fig22(cfg),
            "bounds" => bounds(cfg),
            "concurrency" => concurrency(cfg),
            _ => unreachable!(),
        };
        for t in tables {
            if csv {
                print!("{}", t.render_csv());
            } else {
                t.print();
            }
        }
        eprintln!("[{exp}] done in {:.1}s", started.elapsed().as_secs_f64());
    }
}

/// The Table 2 grid: every workload on every selected backend, one BENCH
/// JSON artifact per cell plus the usual table rendering.
fn run_grid(cfg: RunConfig, backends: &[Backend], out_dir: &std::path::Path, csv: bool) {
    println!(
        "# repro grid: scale={} ops={} backends={:?} -> {}",
        cfg.scale,
        cfg.ops,
        backends.iter().map(|b| b.name()).collect::<Vec<_>>(),
        out_dir.display()
    );
    for workload in grid::GRID_WORKLOADS {
        for &backend in backends {
            let started = Instant::now();
            let report = grid::run_cell(workload, backend, cfg);
            for t in report.to_tables() {
                if csv {
                    print!("{}", t.render_csv());
                } else {
                    t.print();
                }
            }
            let path = report.write_to(out_dir).expect("cannot write BENCH artifact");
            eprintln!(
                "[grid {workload}/{}] wrote {} in {:.1}s",
                backend.name(),
                path.display(),
                started.elapsed().as_secs_f64()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Figure 1 — storage & transmission time, deduplicated vs raw
// ---------------------------------------------------------------------------
fn fig1(cfg: RunConfig) -> Vec<Table> {
    let ycsb = YcsbConfig::default();
    let initial = cfg.scaled(100_000);
    let per_version = cfg.scaled(1_000).min(initial / 10).max(100);
    let checkpoints: Vec<usize> = [100usize, 200, 300, 400, 500]
        .iter()
        .map(|v| ((*v as f64 * cfg.scale) as usize).max(5))
        .collect();
    let max_versions = *checkpoints.last().unwrap();

    let factory = PosFactory(PosParams::default());
    let store = MemStore::new_shared();
    let mut index = factory.empty(store.clone());
    index.batch_insert(ycsb.dataset(initial)).unwrap();

    let mut t = Table::new(
        "Figure 1 — storage (MiB) and 1 GbE transfer time (s): raw vs deduplicated (POS-Tree)",
        &["versions", "raw_mib", "dedup_mib", "raw_seconds", "dedup_seconds"],
    );
    let mut raw_bytes: u64 = index.page_set().byte_size();
    let mut union = index.page_set();
    for v in 1..=max_versions {
        let updates: Vec<Entry> = (0..per_version as u64)
            .map(|i| ycsb.entry((v as u64 * 7919 + i) % initial as u64, v as u32))
            .collect();
        index.batch_insert(updates).unwrap();
        let pages = index.page_set();
        raw_bytes += pages.byte_size();
        union.union_with(&pages);
        if checkpoints.contains(&v) {
            let gbe = |b: u64| format!("{:.2}", b as f64 * 8.0 / 1e9);
            t.row(vec![
                v.to_string(),
                mib(raw_bytes),
                mib(union.byte_size()),
                gbe(raw_bytes),
                gbe(union.byte_size()),
            ]);
        }
    }
    vec![t]
}

// ---------------------------------------------------------------------------
// Figure 6 — YCSB throughput grid (θ × write-ratio × #records)
// ---------------------------------------------------------------------------
fn fig6(cfg: RunConfig) -> Vec<Table> {
    let ycsb = YcsbConfig::default();
    let mut sizes: Vec<usize> = params::DATASET_SIZES.iter().map(|s| cfg.scaled(*s)).collect();
    sizes.dedup();
    let icfg = IndexCfg::ycsb(cfg.node_bytes);

    let mut tables = Vec::new();
    for &theta in params::THETAS {
        for &wr in params::WRITE_RATIOS {
            let mut t = Table::new(
                format!("Figure 6 — YCSB throughput (kops/s), θ={theta}, write-ratio={wr}%"),
                &["records", "pos-tree", "mbt", "mpt", "mvmb+"],
            );
            for &n in &sizes {
                let mut cells = vec![n.to_string()];
                let data = ycsb.dataset(n);
                let ops = ycsb.operations(n, cfg.ops, wr, theta, 1000 + n as u64);
                for_each_index!(icfg, |_name, factory| {
                    let (mut idx, _) = load_batched(&factory, &data, 4_000);
                    let stats = run_ops(&mut idx, &ops);
                    cells.push(kops(stats.total_ops(), stats.total_nanos()));
                });
                t.row(cells);
            }
            tables.push(t);
        }
    }
    tables
}

// ---------------------------------------------------------------------------
// Figure 7 — throughput on Wiki and Ethereum
// ---------------------------------------------------------------------------
fn fig7(cfg: RunConfig) -> Vec<Table> {
    let mut tables = Vec::new();

    // (a) Wiki: load all versions, then uniform read / write streams.
    let wiki = WikiConfig { pages: cfg.scaled(50_000), ..Default::default() };
    let versions = ((300.0 * cfg.scale) as u32).max(5);
    let icfg = IndexCfg::wiki(cfg.node_bytes);
    let mut t = Table::new(
        format!(
            "Figure 7(a) — Wiki throughput (kops/s), {} pages, {} versions",
            wiki.pages, versions
        ),
        &["workload", "pos-tree", "mbt", "mpt", "mvmb+"],
    );
    let mut read_cells = vec!["read".to_string()];
    let mut write_cells = vec!["write".to_string()];
    for_each_index!(icfg, |_name, factory| {
        let (mut idx, _) = load_batched(&factory, &wiki.initial_dump(), 4_000);
        for v in 1..=versions {
            idx.batch_insert(wiki.version_delta(v)).unwrap();
        }
        // Reads over known pages.
        let t0 = Instant::now();
        let reads = cfg.ops.min(4_000);
        for i in 0..reads {
            let key = wiki.url((i * 13 % wiki.pages) as u64);
            idx.get(&key).unwrap();
        }
        read_cells.push(kops(reads, t0.elapsed().as_nanos() as u64));
        let t0 = Instant::now();
        let writes = cfg.ops.min(2_000);
        for i in 0..writes {
            let page = wiki.page((i * 31 % wiki.pages) as u64, versions + 1);
            idx.insert(&page.key, page.value).unwrap();
        }
        write_cells.push(kops(writes, t0.elapsed().as_nanos() as u64));
    });
    t.row(read_cells);
    t.row(write_cells);
    tables.push(t);

    // (b) Ethereum: one index per block + a block chain scanned linearly.
    let eth = EthConfig::default();
    let blocks = ((300_000.0 * cfg.scale / 1000.0) as u64).clamp(10, 200);
    let mut t = Table::new(
        format!(
            "Figure 7(b) — Ethereum throughput (kops/s), {blocks} blocks × {} txs",
            eth.txs_per_block
        ),
        &["workload", "pos-tree", "mbt", "mpt", "mvmb+"],
    );
    let mut read_cells = vec!["read".to_string()];
    let mut write_cells = vec!["write".to_string()];
    let icfg = IndexCfg::eth(cfg.node_bytes);
    for_each_index!(icfg, |_name, factory| {
        // Build the chain: write throughput is bulk-building block indexes.
        let store = MemStore::new_shared();
        let mut chain: Vec<(u64, siri::Hash)> = Vec::new();
        let t0 = Instant::now();
        let mut total_txs = 0usize;
        for b in 0..blocks {
            let mut idx = factory.empty(store.clone());
            let entries = eth.block_entries(b);
            total_txs += entries.len();
            idx.batch_insert(entries).unwrap();
            chain.push((b, idx.root()));
        }
        write_cells.push(kops(total_txs, t0.elapsed().as_nanos() as u64));

        // Reads: scan the chain from the tip for the block holding the tx.
        let reads = cfg.ops.min(500);
        let t0 = Instant::now();
        for i in 0..reads as u64 {
            let target_block = i * 7 % blocks;
            let tx_key = eth.transaction(target_block, (i % 5) as u32).hash_key();
            let mut found = None;
            for (b, root) in chain.iter().rev() {
                let _ = b;
                let idx = factory.open(store.clone(), *root);
                if let Some(v) = idx.get(&tx_key).unwrap() {
                    found = Some(v);
                    break;
                }
            }
            assert!(found.is_some(), "tx must exist");
        }
        read_cells.push(kops(reads, t0.elapsed().as_nanos() as u64));
    });
    t.row(read_cells);
    t.row(write_cells);
    tables.push(t);
    tables
}

// ---------------------------------------------------------------------------
// Figure 8 — diff latency vs #records
// ---------------------------------------------------------------------------
fn fig8(cfg: RunConfig) -> Vec<Table> {
    let ycsb = YcsbConfig::default();
    let sizes: Vec<usize> = [500_000usize, 1_000_000, 1_500_000, 2_000_000, 2_500_000]
        .iter()
        .map(|s| cfg.scaled(*s))
        .collect();
    let icfg = IndexCfg::ycsb(cfg.node_bytes);
    let mut t = Table::new(
        "Figure 8 — diff latency (ms) between two versions loaded in different orders",
        &["records", "pos-tree", "mbt", "mpt", "mvmb+"],
    );
    for &n in &sizes {
        let delta = (n / 100).max(100);
        let data = ycsb.dataset(n);
        let mut data_shuffled = data.clone();
        data_shuffled.reverse();
        let changes: Vec<Entry> =
            (0..delta as u64).map(|i| ycsb.entry(i * 97 % n as u64, 1)).collect();
        let mut cells = vec![n.to_string()];
        for_each_index!(icfg, |_name, factory| {
            // Version A loaded forward, version B loaded in another order
            // and then modified — defeats any shared-build shortcuts.
            let (a, _) = load_batched(&factory, &data, 8_000);
            let (mut b, _) = load_batched(&factory, &data_shuffled, 8_000);
            b.batch_insert(changes.clone()).unwrap();
            let t0 = Instant::now();
            let d = a.diff(&b).unwrap();
            let nanos = t0.elapsed().as_nanos() as u64;
            assert!(d.len() >= delta / 2, "diff missed changes");
            cells.push(format!("{:.2}", nanos as f64 / 1e6));
        });
        t.row(cells);
    }
    vec![t]
}

// ---------------------------------------------------------------------------
// Figure 9 — traversed tree-height histogram
// ---------------------------------------------------------------------------
fn fig9(cfg: RunConfig) -> Vec<Table> {
    let ycsb = YcsbConfig::default();
    let n = cfg.scaled(1_600_000);
    let icfg = IndexCfg::ycsb(cfg.node_bytes);
    let probes = cfg.ops.min(4_000);
    let mut t = Table::new(
        format!("Figure 9 — traversed height histogram over {probes} lookups, {n} records"),
        &["height", "pos-tree", "mbt", "mpt", "mvmb+"],
    );
    let data = ycsb.dataset(n);
    let mut hists: Vec<Vec<usize>> = Vec::new();
    for_each_index!(icfg, |_name, factory| {
        let (idx, _) = load_batched(&factory, &data, 8_000);
        let mut hist = vec![0usize; 16];
        for i in 0..probes {
            let key = ycsb.key((i * 37 % n) as u64);
            let (_, trace) = idx.get_traced(&key).unwrap();
            hist[(trace.height as usize).min(15)] += 1;
        }
        hists.push(hist);
    });
    for h in 1..12 {
        if hists.iter().all(|hist| hist[h] == 0) {
            continue;
        }
        t.row(vec![
            h.to_string(),
            hists[0][h].to_string(),
            hists[1][h].to_string(),
            hists[2][h].to_string(),
            hists[3][h].to_string(),
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------------------
// Figures 10–12 — latency distributions (YCSB / Wiki / Ethereum)
// ---------------------------------------------------------------------------
fn latency_table<F: IndexFactory>(
    factory: &F,
    idx: &mut F::Index,
    ops: &[siri::workloads::ycsb::Op],
    rows: &mut Vec<Vec<String>>,
    label: &str,
) {
    let _ = factory;
    let stats = run_ops(idx, ops);
    for (writes, class) in [(false, "read"), (true, "write")] {
        if stats.latencies.iter().any(|(v, _)| v.is_write() == writes) {
            rows.push(vec![
                label.to_string(),
                class.to_string(),
                format!("{:.1}", stats.percentile_micros(writes, 0.50)),
                format!("{:.1}", stats.percentile_micros(writes, 0.90)),
                format!("{:.1}", stats.percentile_micros(writes, 0.99)),
            ]);
        }
    }
}

fn fig10(cfg: RunConfig) -> Vec<Table> {
    let ycsb = YcsbConfig::default();
    let n = cfg.scaled(1_600_000);
    let icfg = IndexCfg::ycsb(cfg.node_bytes);
    let data = ycsb.dataset(n);
    let mut tables = Vec::new();
    for (theta, skew) in [(0.0, "balanced"), (0.9, "skewed")] {
        let mut t = Table::new(
            format!("Figure 10 — YCSB latency percentiles (µs), {n} records, {skew}"),
            &["index", "class", "p50", "p90", "p99"],
        );
        let mut rows = Vec::new();
        for_each_index!(icfg, |name, factory| {
            let (mut idx, _) = load_batched(&factory, &data, 8_000);
            let reads = ycsb.operations(n, cfg.ops.min(5_000), 0, theta, 5);
            latency_table(&factory, &mut idx, &reads, &mut rows, name);
            let writes = ycsb.operations(n, cfg.ops.min(2_000), 100, theta, 6);
            latency_table(&factory, &mut idx, &writes, &mut rows, name);
        });
        for r in rows {
            t.row(r);
        }
        tables.push(t);
    }
    tables
}

fn fig11(cfg: RunConfig) -> Vec<Table> {
    let wiki = WikiConfig { pages: cfg.scaled(500_000), ..Default::default() };
    let icfg = IndexCfg::wiki(cfg.node_bytes);
    let dump = wiki.initial_dump();
    let mut t = Table::new(
        format!("Figure 11 — Wiki latency percentiles (µs), {} pages", wiki.pages),
        &["index", "class", "p50", "p90", "p99"],
    );
    let mut rows = Vec::new();
    for_each_index!(icfg, |name, factory| {
        let (mut idx, _) = load_batched(&factory, &dump, 8_000);
        let ops: Vec<siri::workloads::ycsb::Op> = (0..cfg.ops.min(3_000) as u64)
            .map(|i| {
                if i % 2 == 0 {
                    siri::workloads::ycsb::Op::Read(wiki.url(i * 17 % wiki.pages as u64))
                } else {
                    siri::workloads::ycsb::Op::Write(wiki.page(i * 17 % wiki.pages as u64, 1))
                }
            })
            .collect();
        latency_table(&factory, &mut idx, &ops, &mut rows, name);
    });
    for r in rows {
        t.row(r);
    }
    vec![t]
}

fn fig12(cfg: RunConfig) -> Vec<Table> {
    let eth = EthConfig::default();
    let blocks = ((100_000.0 * cfg.scale / 1000.0) as u64).clamp(5, 50);
    let icfg = IndexCfg::eth(cfg.node_bytes);
    let mut t = Table::new(
        format!(
            "Figure 12 — Ethereum latency percentiles (µs), {blocks} blocks (reads scan the chain)"
        ),
        &["index", "class", "p50", "p90", "p99"],
    );
    for_each_index!(icfg, |name, factory| {
        let store = MemStore::new_shared();
        let mut chain = Vec::new();
        let mut write_lat = Vec::new();
        for b in 0..blocks {
            let entries = eth.block_entries(b);
            let t0 = Instant::now();
            let mut idx = factory.empty(store.clone());
            idx.batch_insert(entries).unwrap();
            // Per-tx write latency: amortize the block build.
            write_lat.push(t0.elapsed().as_nanos() as u64 / eth.txs_per_block as u64);
            chain.push(idx.root());
        }
        let mut read_lat = Vec::new();
        for i in 0..cfg.ops.min(300) as u64 {
            let target = i * 13 % blocks;
            let key = eth.transaction(target, 0).hash_key();
            let t0 = Instant::now();
            let mut found = false;
            for root in chain.iter().rev() {
                if factory.open(store.clone(), *root).get(&key).unwrap().is_some() {
                    found = true;
                    break;
                }
            }
            assert!(found);
            read_lat.push(t0.elapsed().as_nanos() as u64);
        }
        let pct = |v: &mut Vec<u64>, p: f64| {
            v.sort_unstable();
            v[((v.len() - 1) as f64 * p) as usize] as f64 / 1e3
        };
        t.row(vec![
            name.to_string(),
            "read".into(),
            format!("{:.1}", pct(&mut read_lat, 0.5)),
            format!("{:.1}", pct(&mut read_lat, 0.9)),
            format!("{:.1}", pct(&mut read_lat, 0.99)),
        ]);
        t.row(vec![
            name.to_string(),
            "write".into(),
            format!("{:.1}", pct(&mut write_lat, 0.5)),
            format!("{:.1}", pct(&mut write_lat, 0.9)),
            format!("{:.1}", pct(&mut write_lat, 0.99)),
        ]);
    });
    vec![t]
}

// ---------------------------------------------------------------------------
// Figure 13 — MBT lookup breakdown: load vs scan
// ---------------------------------------------------------------------------
fn fig13(cfg: RunConfig) -> Vec<Table> {
    let ycsb = YcsbConfig::default();
    let icfg = IndexCfg::ycsb(cfg.node_bytes);
    let sizes: Vec<usize> = (1..=8).map(|i| cfg.scaled(i * 200_000)).collect();
    let mut t = Table::new(
        format!("Figure 13 — MBT lookup breakdown (µs), B={}", icfg.mbt_buckets),
        &["records", "load_us", "scan_us", "bucket_entries"],
    );
    for &n in &sizes {
        let factory = mbt_factory(icfg);
        let (idx, _) = load_batched(&factory, &ycsb.dataset(n), 8_000);
        let probes = 500;
        let (mut load, mut scan, mut scanned) = (0u64, 0u64, 0u64);
        for i in 0..probes {
            let key = ycsb.key((i * 41 % n) as u64);
            let (_, trace) = idx.get_traced(&key).unwrap();
            load += trace.load_nanos;
            scan += trace.scan_nanos;
            scanned += trace.leaf_entries_scanned as u64;
        }
        t.row(vec![
            n.to_string(),
            micros(load / probes as u64),
            micros(scan / probes as u64),
            format!("{:.1}", scanned as f64 / probes as f64),
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------------------
// Figures 14–16 — storage & node counts (YCSB / Wiki / Ethereum)
// ---------------------------------------------------------------------------
fn fig14(cfg: RunConfig) -> Vec<Table> {
    let ycsb = YcsbConfig::default();
    let icfg = IndexCfg::ycsb(cfg.node_bytes);
    let sizes: Vec<usize> =
        [40_000usize, 80_000, 160_000, 320_000, 640_000].iter().map(|s| cfg.scaled(*s)).collect();
    let mut storage = Table::new(
        "Figure 14(a) — storage usage (MiB), single group, all versions retained",
        &["records", "pos-tree", "mbt", "mpt", "mvmb+"],
    );
    let mut nodes = Table::new(
        "Figure 14(b) — stored pages (x1000)",
        &["records", "pos-tree", "mbt", "mpt", "mvmb+"],
    );
    for &n in &sizes {
        let data = ycsb.dataset(n);
        let mut s_cells = vec![n.to_string()];
        let mut n_cells = vec![n.to_string()];
        for_each_index!(icfg, |_name, factory| {
            let (idx, _roots) = load_batched(&factory, &data, 4_000);
            let stats = idx.store().stats();
            s_cells.push(mib(stats.unique_bytes));
            n_cells.push(format!("{:.1}", stats.unique_pages as f64 / 1e3));
        });
        storage.row(s_cells);
        nodes.row(n_cells);
    }
    vec![storage, nodes]
}

fn fig15(cfg: RunConfig) -> Vec<Table> {
    let wiki = WikiConfig { pages: cfg.scaled(200_000), update_pct: 1, ..Default::default() };
    let icfg = IndexCfg::wiki(cfg.node_bytes);
    let checkpoints: Vec<u32> = [100u32, 150, 200, 250, 300]
        .iter()
        .map(|v| ((*v as f64 * cfg.scale) as u32).max(3))
        .collect();
    let max_v = *checkpoints.last().unwrap();
    let mut storage = Table::new(
        format!("Figure 15(a) — Wiki storage (MiB), {} pages", wiki.pages),
        &["versions", "pos-tree", "mbt", "mpt", "mvmb+"],
    );
    let mut nodes = Table::new(
        "Figure 15(b) — Wiki stored pages (x1000)",
        &["versions", "pos-tree", "mbt", "mpt", "mvmb+"],
    );
    let mut per_index: Vec<Vec<(u64, u64)>> = Vec::new();
    for_each_index!(icfg, |_name, factory| {
        let (mut idx, _) = load_batched(&factory, &wiki.initial_dump(), 8_000);
        let mut points = Vec::new();
        for v in 1..=max_v {
            idx.batch_insert(wiki.version_delta(v)).unwrap();
            if checkpoints.contains(&v) {
                let stats = idx.store().stats();
                points.push((stats.unique_bytes, stats.unique_pages));
            }
        }
        per_index.push(points);
    });
    for (i, v) in checkpoints.iter().enumerate() {
        storage.row(vec![
            v.to_string(),
            mib(per_index[0][i].0),
            mib(per_index[1][i].0),
            mib(per_index[2][i].0),
            mib(per_index[3][i].0),
        ]);
        nodes.row(vec![
            v.to_string(),
            format!("{:.1}", per_index[0][i].1 as f64 / 1e3),
            format!("{:.1}", per_index[1][i].1 as f64 / 1e3),
            format!("{:.1}", per_index[2][i].1 as f64 / 1e3),
            format!("{:.1}", per_index[3][i].1 as f64 / 1e3),
        ]);
    }
    vec![storage, nodes]
}

fn fig16(cfg: RunConfig) -> Vec<Table> {
    let eth = EthConfig::default();
    let icfg = IndexCfg::eth(cfg.node_bytes);
    let checkpoints: Vec<u64> = [100_000u64, 200_000, 300_000]
        .iter()
        .map(|b| ((*b as f64 * cfg.scale / 100.0) as u64).max(20))
        .collect();
    let max_b = *checkpoints.last().unwrap();
    let mut storage = Table::new(
        format!("Figure 16(a) — Ethereum storage (MiB), {} txs/block", eth.txs_per_block),
        &["blocks", "pos-tree", "mbt", "mpt", "mvmb+"],
    );
    let mut nodes = Table::new(
        "Figure 16(b) — Ethereum stored pages (x1000)",
        &["blocks", "pos-tree", "mbt", "mpt", "mvmb+"],
    );
    let mut per_index: Vec<Vec<(u64, u64)>> = Vec::new();
    for_each_index!(icfg, |_name, factory| {
        let store = MemStore::new_shared();
        let mut points = Vec::new();
        for b in 0..max_b {
            let mut idx = factory.empty(store.clone());
            idx.batch_insert(eth.block_entries(b)).unwrap();
            if checkpoints.contains(&(b + 1)) {
                let stats = store.stats();
                points.push((stats.unique_bytes, stats.unique_pages));
            }
        }
        per_index.push(points);
    });
    for (i, b) in checkpoints.iter().enumerate() {
        storage.row(vec![
            b.to_string(),
            mib(per_index[0][i].0),
            mib(per_index[1][i].0),
            mib(per_index[2][i].0),
            mib(per_index[3][i].0),
        ]);
        nodes.row(vec![
            b.to_string(),
            format!("{:.1}", per_index[0][i].1 as f64 / 1e3),
            format!("{:.1}", per_index[1][i].1 as f64 / 1e3),
            format!("{:.1}", per_index[2][i].1 as f64 / 1e3),
            format!("{:.1}", per_index[3][i].1 as f64 / 1e3),
        ]);
    }
    vec![storage, nodes]
}

// ---------------------------------------------------------------------------
// Figures 17 & 18 — diverse-group collaboration
// ---------------------------------------------------------------------------
fn fig17_18(cfg: RunConfig, fixed_overlap: Option<u32>) -> Vec<Table> {
    let ycsb = YcsbConfig::default();
    let icfg = IndexCfg::ycsb(cfg.node_bytes);
    let parties = 10;
    let init = cfg.scaled(40_000);
    let ops = cfg.scaled(160_000);

    let (title, xlabel, xs): (&str, &str, Vec<(u32, usize)>) = match fixed_overlap {
        None => (
            "Figure 17 — collaboration vs overlap ratio (batch 4000)",
            "overlap_%",
            params::OVERLAP_RATIOS.iter().skip(1).map(|o| (*o, 4_000)).collect(),
        ),
        Some(overlap) => (
            "Figure 18 — collaboration vs batch size (overlap 50%)",
            "batch",
            params::BATCH_SIZES.iter().map(|b| (overlap, *b)).collect(),
        ),
    };

    let mut storage =
        Table::new(format!("{title}: storage (MiB)"), &[xlabel, "pos-tree", "mbt", "mpt", "mvmb+"]);
    let mut nodes = Table::new(
        format!("{title}: stored pages (x1000)"),
        &[xlabel, "pos-tree", "mbt", "mpt", "mvmb+"],
    );
    let mut dedup = Table::new(
        format!("{title}: deduplication ratio"),
        &[xlabel, "pos-tree", "mbt", "mpt", "mvmb+"],
    );
    let mut sharing = Table::new(
        format!("{title}: node sharing ratio"),
        &[xlabel, "pos-tree", "mbt", "mpt", "mvmb+"],
    );

    for (overlap, batch) in xs {
        let x = match fixed_overlap {
            None => overlap.to_string(),
            Some(_) => batch.to_string(),
        };
        let init_data = ycsb.dataset(init);
        let party_loads = ycsb.collaboration(parties, ops, overlap);
        let mut cells: Vec<Vec<String>> =
            vec![vec![x.clone()], vec![x.clone()], vec![x.clone()], vec![x]];
        for_each_index!(icfg, |_name, factory| {
            let store = MemStore::new_shared();
            let mut sets = Vec::new();
            for load in &party_loads {
                let mut idx = factory.empty(store.clone());
                idx.batch_insert(init_data.clone()).unwrap();
                sets.push(idx.page_set());
                for chunk in load.chunks(batch) {
                    idx.batch_insert(chunk.to_vec()).unwrap();
                    sets.push(idx.page_set());
                }
            }
            let report = metrics::storage_report(&sets);
            cells[0].push(mib(report.stored_bytes));
            cells[1].push(format!("{:.1}", report.stored_pages as f64 / 1e3));
            cells[2].push(ratio(report.deduplication_ratio));
            cells[3].push(ratio(report.node_sharing_ratio));
        });
        storage.row(cells.remove(0));
        nodes.row(cells.remove(0));
        dedup.row(cells.remove(0));
        sharing.row(cells.remove(0));
    }
    vec![storage, nodes, dedup, sharing]
}

// ---------------------------------------------------------------------------
// Table 3 — parameter sensitivity of the deduplication ratio
// ---------------------------------------------------------------------------
fn tab3(cfg: RunConfig) -> Vec<Table> {
    let ycsb = YcsbConfig::default();
    let n = cfg.scaled(160_000);
    let updates = (n / 10).max(500);
    let data = ycsb.dataset(n);
    let delta: Vec<Entry> = (0..updates as u64).map(|i| ycsb.entry(i * 31 % n as u64, 1)).collect();

    // Two sequential versions; η over their page sets (§4.2.2 setting).
    // Four decimals: the MPT key-length effect is small (the paper's own
    // Table 3 spans just 0.9685→0.9823).
    let eta_for = |sets: &[siri::PageSet]| format!("{:.4}", metrics::deduplication_ratio(sets));

    let mut pos_t = Table::new("Table 3 — η(POS-Tree) vs node size", &["node_bytes", "eta"]);
    for node in [512usize, 1024, 2048, 4096] {
        let factory = PosFactory(PosParams::default().with_node_bytes(node));
        let (mut idx, _) = load_batched(&factory, &data, usize::MAX);
        let v1 = idx.page_set();
        idx.batch_insert(delta.clone()).unwrap();
        pos_t.row(vec![node.to_string(), eta_for(&[v1, idx.page_set()])]);
    }

    let mut mbt_t = Table::new("Table 3 — η(MBT) vs bucket count", &["buckets", "eta"]);
    for buckets in [4_000usize, 6_000, 8_000, 10_000] {
        let factory = siri::MbtFactory { buckets, fanout: 32 };
        let (mut idx, _) = load_batched(&factory, &data, usize::MAX);
        let v1 = idx.page_set();
        idx.batch_insert(delta.clone()).unwrap();
        mbt_t.row(vec![buckets.to_string(), eta_for(&[v1, idx.page_set()])]);
    }

    // Small values for the MPT sweep: the key-length effect lives in the
    // trie-path bytes, which 256 B payloads would drown (the paper's MPT
    // η values sit near 0.97 for the same reason — tiny deltas).
    let mut mpt_t = Table::new("Table 3 — η(MPT) vs mean key length", &["mean_keylen", "eta"]);
    for key_min in [5usize, 8, 11, 14] {
        let gen = YcsbConfig {
            key_len_min: key_min,
            key_len_max: 15,
            value_len_avg: 32,
            ..Default::default()
        };
        let d = gen.dataset(n);
        let mean: f64 = d.iter().map(|e| e.key.len() as f64).sum::<f64>() / d.len() as f64;
        let dd: Vec<Entry> = (0..updates as u64).map(|i| gen.entry(i * 31 % n as u64, 1)).collect();
        let factory = siri::MptFactory;
        let (mut idx, _) = load_batched(&factory, &d, usize::MAX);
        let v1 = idx.page_set();
        idx.batch_insert(dd).unwrap();
        mpt_t.row(vec![format!("{mean:.1}"), eta_for(&[v1, idx.page_set()])]);
    }
    vec![pos_t, mbt_t, mpt_t]
}

// ---------------------------------------------------------------------------
// Figures 19 & 20 — SIRI property ablations
// ---------------------------------------------------------------------------
enum AblationKind {
    ForcedSplit,
    CopyAll,
}

fn fig19_20(cfg: RunConfig, kind: AblationKind) -> Vec<Table> {
    let ycsb = YcsbConfig::default();
    let parties = 10;
    let init = cfg.scaled(40_000);
    let ops = cfg.scaled(160_000) / 2; // ablation rebuilds are heavier
    let (title, normal_lbl, ablated_lbl) = match kind {
        AblationKind::ForcedSplit => (
            "Figure 19 — disabling Structurally Invariant (POS-Tree)",
            "structurally_invariant",
            "non_structurally_invariant",
        ),
        AblationKind::CopyAll => (
            "Figure 20 — disabling Recursively Identical (POS-Tree)",
            "recursively_identical",
            "non_recursively_identical",
        ),
    };
    let mut dedup = Table::new(
        format!("{title}: deduplication ratio"),
        &["overlap_%", normal_lbl, ablated_lbl],
    );
    let mut sharing =
        Table::new(format!("{title}: node sharing ratio"), &["overlap_%", normal_lbl, ablated_lbl]);

    for &overlap in params::OVERLAP_RATIOS.iter().skip(1) {
        let init_data = ycsb.dataset(init);
        let party_loads = ycsb.collaboration(parties, ops, overlap);
        let run = |ablated: bool| -> (f64, f64) {
            let store = MemStore::new_shared();
            // The instance set S includes every post-batch *version* of
            // every party — sharing across versions is exactly what the
            // Recursively Identical ablation destroys (§5.5.2).
            let mut sets = Vec::new();
            for (party, load) in party_loads.iter().enumerate() {
                let mut idx: PosTree = match (&kind, ablated) {
                    (_, false) => PosTree::new(store.clone(), PosParams::default()),
                    (AblationKind::ForcedSplit, true) => PosTree::new_forced_split(store.clone()),
                    (AblationKind::CopyAll, true) => {
                        PosTree::new_copy_all(store.clone(), PosParams::default(), party as u64)
                    }
                };
                idx.batch_insert(init_data.clone()).unwrap();
                sets.push(idx.page_set());
                for chunk in load.chunks(1_000) {
                    idx.batch_insert(chunk.to_vec()).unwrap();
                    sets.push(idx.page_set());
                }
            }
            (metrics::deduplication_ratio(&sets), metrics::node_sharing_ratio(&sets))
        };
        let (d_norm, s_norm) = run(false);
        let (d_abl, s_abl) = run(true);
        dedup.row(vec![overlap.to_string(), ratio(d_norm), ratio(d_abl)]);
        sharing.row(vec![overlap.to_string(), ratio(s_norm), ratio(s_abl)]);
    }
    vec![dedup, sharing]
}

// ---------------------------------------------------------------------------
// Figure 21 — Forkbase-integrated throughput (client cache + remote cost)
// ---------------------------------------------------------------------------
fn fig21(cfg: RunConfig) -> Vec<Table> {
    let ycsb = YcsbConfig::default();
    let icfg = IndexCfg::ycsb(cfg.node_bytes);
    let mut sizes: Vec<usize> = [10_000usize, 40_000, 160_000, 640_000, 2_560_000, 5_120_000]
        .iter()
        .map(|s| cfg.scaled(*s))
        .collect();
    sizes.dedup();
    let mut read_t = Table::new(
        format!(
            "Figure 21(a) — Forkbase-integrated read throughput (kops/s), fetch cost {}µs",
            siri::DEFAULT_FETCH_COST_NANOS / 1000
        ),
        &["records", "pos-tree", "mbt", "mpt", "mvmb+"],
    );
    let mut write_t = Table::new(
        "Figure 21(b) — Forkbase-integrated write throughput (kops/s)",
        &["records", "pos-tree", "mbt", "mpt", "mvmb+"],
    );
    for &n in &sizes {
        let data = ycsb.dataset(n);
        let mut r_cells = vec![n.to_string()];
        let mut w_cells = vec![n.to_string()];
        for_each_index!(icfg, |_name, factory| {
            let fb = Forkbase::new(factory, siri::DEFAULT_FETCH_COST_NANOS);
            for chunk in data.chunks(8_000) {
                fb.put("master", chunk.to_vec()).unwrap();
            }
            // Client reads: wall time + modelled remote latency.
            let reads = cfg.ops.min(3_000);
            let t0 = Instant::now();
            for i in 0..reads {
                fb.get("master", &ycsb.key((i * 29 % n) as u64)).unwrap();
            }
            let (_, _, synthetic) = fb.client_stats();
            let nanos = t0.elapsed().as_nanos() as u64 + synthetic;
            r_cells.push(kops(reads, nanos));
            // Server-side writes.
            let writes = cfg.ops.min(1_500);
            let t0 = Instant::now();
            for i in 0..writes {
                fb.put("master", vec![ycsb.entry((i * 53 % n) as u64, 9)]).unwrap();
            }
            w_cells.push(kops(writes, t0.elapsed().as_nanos() as u64));
        });
        read_t.row(r_cells);
        write_t.row(w_cells);
    }
    vec![read_t, write_t]
}

// ---------------------------------------------------------------------------
// Figure 22 — Forkbase vs Noms
// ---------------------------------------------------------------------------
fn fig22(cfg: RunConfig) -> Vec<Table> {
    let ycsb = YcsbConfig::default();
    let mut sizes: Vec<usize> =
        [10_000usize, 20_000, 40_000, 80_000, 128_000].iter().map(|s| cfg.scaled(*s)).collect();
    sizes.dedup();
    let mut t = Table::new(
        "Figure 22 — Forkbase (POS-Tree, 4K nodes, batched) vs Noms (Prolly, per-op) throughput (kops/s)",
        &["records", "fb_read", "noms_read", "fb_write", "noms_write"],
    );
    for &n in &sizes {
        let data = ycsb.dataset(n);
        let reads = cfg.ops.min(2_000);
        let writes = cfg.ops.min(500);

        // Forkbase: POS-Tree with Noms' 4 KB node size, batched writes.
        let fb = Forkbase::new(
            PosFactory(PosParams::default().with_node_bytes(4096)),
            siri::DEFAULT_FETCH_COST_NANOS,
        );
        for chunk in data.chunks(8_000) {
            fb.put("master", chunk.to_vec()).unwrap();
        }
        let t0 = Instant::now();
        for i in 0..reads {
            fb.get("master", &ycsb.key((i * 29 % n) as u64)).unwrap();
        }
        let fb_read = t0.elapsed().as_nanos() as u64 + fb.client_stats().2;
        let t0 = Instant::now();
        fb.put("master", (0..writes as u64).map(|i| ycsb.entry(i * 53 % n as u64, 9)).collect())
            .unwrap();
        let fb_write = t0.elapsed().as_nanos() as u64;

        // Noms: Prolly chunking (sliding-window internal hashing), per-op
        // writes.
        let noms = NomsEngine::new(PosFactory::noms(), siri::DEFAULT_FETCH_COST_NANOS);
        for chunk in data.chunks(8_000) {
            // Initial load may batch — the measured difference is the
            // update path, as in the paper's experiment.
            noms.put("master", chunk.to_vec()).unwrap();
        }
        let t0 = Instant::now();
        for i in 0..reads {
            noms.get("master", &ycsb.key((i * 29 % n) as u64)).unwrap();
        }
        let noms_read = t0.elapsed().as_nanos() as u64 + noms.engine().client_stats().2;
        let t0 = Instant::now();
        noms.put("master", (0..writes as u64).map(|i| ycsb.entry(i * 53 % n as u64, 9)).collect())
            .unwrap();
        let noms_write = t0.elapsed().as_nanos() as u64;

        t.row(vec![
            n.to_string(),
            kops(reads, fb_read),
            kops(reads, noms_read),
            kops(writes, fb_write),
            kops(writes, noms_write),
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------------------
// Concurrency — multi-writer Forkbase (CAS branch heads + group commit)
// ---------------------------------------------------------------------------
fn concurrency(cfg: RunConfig) -> Vec<Table> {
    use std::sync::Arc;
    let ycsb = YcsbConfig::default();
    let batch = 50usize;
    let commits_per_writer = (cfg.ops / batch).clamp(10, 200);
    let ycsb_batch = |t: usize, c: usize, version: u32| {
        WriteBatch::from_entries(
            (0..batch)
                .map(|i| ycsb.entry((t * 1_000_003 + c * batch + i) as u64, version))
                .collect(),
        )
    };

    // (a) Commits to disjoint branches: per-branch head slots mean zero
    // contention, so throughput should scale with writers until the
    // hardware (or the store's append path) saturates. The core count is
    // stamped into the title — on a 1-core box the correct shape is
    // *flat*, i.e. no slowdown from adding writers.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut scaling = Table::new(
        format!(
            "Concurrency (a) — disjoint-branch commit throughput \
             (POS-Tree, MemStore, {cores} core(s))"
        ),
        &["writers", "kops/s", "conflicts"],
    );
    let mut writers = 1usize;
    while writers <= cfg.threads.max(1) {
        let fb = Arc::new(Forkbase::new(PosFactory(PosParams::default()), 0));
        for t in 0..writers {
            fb.fork("master", &format!("w{t}")).unwrap();
        }
        let dt = run_concurrent_writers(
            &fb,
            writers,
            commits_per_writer,
            |t| format!("w{t}"),
            |t, c| ycsb_batch(t, c, 1),
        );
        let ops = writers * commits_per_writer * batch;
        scaling.row(vec![
            writers.to_string(),
            kops(ops, dt.as_nanos() as u64),
            fb.engine_stats().conflicts.to_string(),
        ]);
        writers *= 2;
    }

    // (b) Contended commits to ONE branch: optimistic CAS with re-apply.
    // Disjoint keys per writer make the expected final state
    // order-independent, so model agreement is exact: every batch applied
    // exactly once ⇔ the final record count matches.
    let mut contended = Table::new(
        "Concurrency (b) — same-branch CAS commits (POS-Tree, MemStore)",
        &["writers", "commits", "conflicts", "kops/s", "model_agrees"],
    );
    let mut writers = 2usize;
    while writers <= cfg.threads.max(2) {
        let fb = Arc::new(Forkbase::new(PosFactory(PosParams::default()), 0));
        let dt = run_concurrent_writers(
            &fb,
            writers,
            commits_per_writer,
            |_| "master".into(),
            |t, c| {
                let mut b = WriteBatch::new();
                for i in 0..batch {
                    b.put(format!("w{t:02}-c{c:04}-{i:03}").into_bytes(), vec![t as u8; 16]);
                }
                b
            },
        );
        let stats = fb.engine_stats();
        let expected = writers * commits_per_writer * batch;
        let agrees = fb.head("master").unwrap().len().unwrap() == expected;
        contended.row(vec![
            writers.to_string(),
            stats.commits.to_string(),
            stats.conflicts.to_string(),
            kops(expected, dt.as_nanos() as u64),
            agrees.to_string(),
        ]);
        writers *= 2;
    }

    // (d) Sharded branch head (ISSUE 8): the same contended single-branch
    // workload as (b), but with writers confined to disjoint key-range
    // shards of a pinned-N partition. Against the single-slot baseline of
    // PR 5 the per-shard CAS should show zero conflicts and zero retries
    // — the speedup column is sharded vs single-slot wall-clock at the
    // same writer count.
    let mut sharded = Table::new(
        "Concurrency (d) — sharded vs single-slot head, one branch, \
         disjoint key ranges (POS-Tree, MemStore)",
        &["writers", "single_kops/s", "sharded_kops/s", "speedup", "conflicts", "shard_conflicts"],
    );
    let mut writers = 2usize;
    while writers <= cfg.threads.max(2) {
        // First key byte pins writer t to shard t of the uniform
        // `writers`-way partition.
        let lead = move |t: usize, writers: usize| (t * 256 / writers + 1) as u8;
        let make = move |t: usize, c: usize, writers: usize| {
            let mut b = WriteBatch::new();
            for i in 0..batch {
                let mut key = vec![lead(t, writers)];
                key.extend_from_slice(format!("w{t:02}-c{c:04}-{i:03}").as_bytes());
                b.put(key, vec![t as u8; 16]);
            }
            b
        };
        // Single-slot baseline.
        let single = Arc::new(Forkbase::with_sharding(
            PosFactory(PosParams::default()),
            MemStore::new_shared(),
            ShardingPolicy::single(),
            0,
        ));
        let dt_single = run_concurrent_writers(
            &single,
            writers,
            commits_per_writer,
            |_| "master".into(),
            move |t, c| make(t, c, writers),
        );
        // Pinned N-shard head.
        let fb = Arc::new(Forkbase::with_sharding(
            PosFactory(PosParams::default()),
            MemStore::new_shared(),
            ShardingPolicy::pinned(writers),
            0,
        ));
        let dt_sharded = run_concurrent_writers(
            &fb,
            writers,
            commits_per_writer,
            |_| "master".into(),
            move |t, c| make(t, c, writers),
        );
        let expected = writers * commits_per_writer * batch;
        debug_assert_eq!(fb.head("master").unwrap().len().unwrap(), expected);
        let shard_conflicts: u64 =
            fb.shard_stats("master").unwrap().iter().map(|s| s.conflicts).sum();
        sharded.row(vec![
            writers.to_string(),
            kops(expected, dt_single.as_nanos() as u64),
            kops(expected, dt_sharded.as_nanos() as u64),
            format!("{:.2}x", dt_single.as_secs_f64() / dt_sharded.as_secs_f64().max(1e-9)),
            fb.engine_stats().conflicts.to_string(),
            shard_conflicts.to_string(),
        ]);
        writers *= 2;
    }

    // (e) Parallel bulk load: shard sub-trees built on N threads, one
    // manifest committed over the finished sub-roots.
    let mut bulk = Table::new(
        "Concurrency (e) — parallel bulk load via sharded build (POS-Tree, MemStore)",
        &["threads", "records", "kops/s", "speedup"],
    );
    let load_n = (cfg.ops * 20).clamp(5_000, 200_000);
    let data: Vec<Entry> = ycsb.dataset(load_n);
    let mut serial_nanos = 0u64;
    let mut threads = 1usize;
    while threads <= cfg.threads.max(1) {
        let fb = Forkbase::with_sharding(
            PosFactory(PosParams::default()),
            MemStore::new_shared(),
            ShardingPolicy::single(),
            0,
        );
        let t0 = Instant::now();
        fb.bulk_load("loaded", data.clone(), threads).unwrap();
        let dt = t0.elapsed().as_nanos() as u64;
        if threads == 1 {
            serial_nanos = dt;
        }
        bulk.row(vec![
            threads.to_string(),
            load_n.to_string(),
            kops(load_n, dt),
            format!("{:.2}x", serial_nanos as f64 / dt.max(1) as f64),
        ]);
        threads *= 2;
    }

    // (c) Group commit on the durable store: one shared fsync per flush
    // tick instead of one per commit.
    let mut group = Table::new(
        "Concurrency (c) — durable commit fsync sharing (POS-Tree, FileStore)",
        &["policy", "writers", "commits", "fsyncs", "kops/s"],
    );
    let writers = cfg.threads.max(2);
    for (label, policy) in [
        ("commit", FsyncPolicy::OnCommit),
        ("group=2ms", FsyncPolicy::Group(std::time::Duration::from_millis(2))),
    ] {
        let dir = std::env::temp_dir()
            .join("siri-repro-concurrency")
            .join(format!("{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = FileStoreOptions { fsync: policy, ..FileStoreOptions::default() };
        let fb = Arc::new(
            Forkbase::new_durable(PosFactory(PosParams::default()), &dir, opts, 0).unwrap(),
        );
        for t in 0..writers {
            fb.fork("master", &format!("w{t}")).unwrap();
        }
        let durable_commits = commits_per_writer.min(25);
        let dt = run_concurrent_writers(
            &fb,
            writers,
            durable_commits,
            |t| format!("w{t}"),
            |t, c| ycsb_batch(t, c, 2),
        );
        let stats = fb.server_stats();
        group.row(vec![
            label.to_string(),
            writers.to_string(),
            stats.commits.to_string(),
            stats.fsyncs.to_string(),
            kops(writers * durable_commits * batch, dt.as_nanos() as u64),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    vec![scaling, contended, sharded, bulk, group]
}

// ---------------------------------------------------------------------------
// §4.1 operation bounds — measured heights vs model
// ---------------------------------------------------------------------------
fn bounds(cfg: RunConfig) -> Vec<Table> {
    let ycsb = YcsbConfig::default();
    let icfg = IndexCfg::ycsb(cfg.node_bytes);
    let mut sizes: Vec<usize> = params::DATASET_SIZES.iter().map(|s| cfg.scaled(*s)).collect();
    sizes.dedup();
    let mut t = Table::new(
        "§4.1 bounds — measured avg traversed height (pages) vs model predictions",
        &[
            "records",
            "pos",
            "pos_model",
            "mbt",
            "mbt_model",
            "mpt",
            "mpt_model",
            "mvmb+",
            "mvmb_model",
        ],
    );
    for &n in &sizes {
        let data = ycsb.dataset(n);
        let p = cost_model::ModelParams {
            n: n as f64,
            m: (icfg.node_bytes / (32 + icfg.avg_key)) as f64,
            b: icfg.mbt_buckets as f64,
            l: 2.0 * icfg.avg_key as f64, // nibbles
        };
        let mut measured = Vec::new();
        for_each_index!(icfg, |_name, factory| {
            let (idx, _) = load_batched(&factory, &data, 8_000);
            let probes = 300;
            let mut pages = 0u64;
            for i in 0..probes {
                let (_, trace) = idx.get_traced(&ycsb.key((i * 17 % n) as u64)).unwrap();
                pages += trace.pages_loaded as u64;
            }
            measured.push(pages as f64 / probes as f64);
        });
        t.row(vec![
            n.to_string(),
            format!("{:.1}", measured[0]),
            format!("{:.1}", cost_model::pos_lookup(p)),
            format!("{:.1}", measured[1]),
            format!("{:.1}", cost_model::mbt_lookup(p)),
            format!("{:.1}", measured[2]),
            format!("{:.1}", cost_model::mpt_lookup(p) / 4.0), // compaction factor
            format!("{:.1}", measured[3]),
            format!("{:.1}", cost_model::mvmb_lookup(p)),
        ]);
    }
    vec![t]
}
