//! Index-agnostic experiment drivers.

use std::sync::Arc;
use std::time::{Duration, Instant};

use siri::workloads::ycsb::Op;
use siri::{
    Bytes, CachingStore, Entry, Forkbase, Hash, IndexFactory, MbtFactory, MemStore, MptFactory,
    MvmbFactory, MvmbParams, PageSet, PosFactory, PosParams, SharedStore, SiriIndex, WriteBatch,
};

/// Per-workload structure tuning, following §5's "node size ≈ 1 KB" rule.
#[derive(Debug, Clone, Copy)]
pub struct IndexCfg {
    pub node_bytes: usize,
    /// Average encoded entry size of the workload (keys + values).
    pub avg_entry: usize,
    pub avg_key: usize,
    /// MBT capacity — fixed for the index's lifetime (§3.4.2).
    pub mbt_buckets: usize,
    pub mbt_fanout: usize,
}

impl IndexCfg {
    pub fn ycsb(node_bytes: usize) -> Self {
        IndexCfg { node_bytes, avg_entry: 271, avg_key: 10, mbt_buckets: 1024, mbt_fanout: 32 }
    }

    pub fn wiki(node_bytes: usize) -> Self {
        IndexCfg { node_bytes, avg_entry: 150, avg_key: 50, mbt_buckets: 1024, mbt_fanout: 32 }
    }

    pub fn eth(node_bytes: usize) -> Self {
        IndexCfg { node_bytes, avg_entry: 600, avg_key: 64, mbt_buckets: 256, mbt_fanout: 32 }
    }
}

/// Drive `writers` threads through one shared engine — the multi-writer
/// cell used by both the `repro concurrency` experiment and the
/// `multi_writer` bench. Writer `t` commits `commits` batches (built by
/// `make_batch(t, k)`) to the branch `branch_of(t)` names: the same
/// string for every writer exercises the contended CAS path, distinct
/// strings the parallel per-slot path. Returns the wall time of the whole
/// burst; every commit is unwrapped, so an engine error fails the run.
pub fn run_concurrent_writers<F: IndexFactory>(
    fb: &Arc<Forkbase<F>>,
    writers: usize,
    commits: usize,
    branch_of: impl Fn(usize) -> String,
    make_batch: impl Fn(usize, usize) -> WriteBatch + Sync,
) -> Duration {
    let make_batch = &make_batch;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..writers {
            let fb = Arc::clone(fb);
            let branch = branch_of(t);
            s.spawn(move || {
                for k in 0..commits {
                    fb.commit(&branch, make_batch(t, k)).unwrap();
                }
            });
        }
    });
    t0.elapsed()
}

pub fn pos_factory(cfg: IndexCfg) -> PosFactory {
    PosFactory(PosParams::default().with_node_bytes(cfg.node_bytes).with_chunker(chunker_kind()))
}

/// POS-Tree chunker selected for this run: `SIRI_CHUNKER=gear` opts into
/// the gear fast path, anything else (including unset) keeps the
/// digest-stable buzhash default. Stamped into every BENCH artifact so
/// `bench-diff` refuses cross-chunker comparisons.
pub fn chunker_kind() -> siri::ChunkerKind {
    match std::env::var("SIRI_CHUNKER").as_deref() {
        Ok("gear") => siri::ChunkerKind::Gear,
        _ => siri::ChunkerKind::Buzhash,
    }
}

/// Branch-head shard configuration for this run, as stamped into every
/// BENCH artifact: `(initial shard count, adaptive?)` straight from the
/// engine's `SIRI_SHARDS` policy, so `bench-diff` refuses cross-partition
/// comparisons the same way it refuses cross-chunker ones.
pub fn shard_config() -> (u64, bool) {
    let policy = siri::ShardingPolicy::from_env();
    (policy.initial as u64, policy.adaptive)
}

pub fn mbt_factory(cfg: IndexCfg) -> MbtFactory {
    MbtFactory { buckets: cfg.mbt_buckets, fanout: cfg.mbt_fanout }
}

pub fn mpt_factory(_cfg: IndexCfg) -> MptFactory {
    MptFactory
}

pub fn mvmb_factory(cfg: IndexCfg) -> MvmbFactory {
    MvmbFactory(MvmbParams::for_node_size(cfg.node_bytes, cfg.avg_entry, cfg.avg_key))
}

/// Run `body` once per index structure, passing its display name and
/// factory. The single place that enumerates the four candidates.
#[macro_export]
macro_rules! for_each_index {
    ($cfg:expr, |$name:ident, $factory:ident| $body:block) => {{
        {
            let $name = "pos-tree";
            let $factory = $crate::harness::pos_factory($cfg);
            $body
        }
        {
            let $name = "mbt";
            let $factory = $crate::harness::mbt_factory($cfg);
            $body
        }
        {
            let $name = "mpt";
            let $factory = $crate::harness::mpt_factory($cfg);
            $body
        }
        {
            let $name = "mvmb+";
            let $factory = $crate::harness::mvmb_factory($cfg);
            $body
        }
    }};
}

/// Build an index over a fresh store, loading `entries` in batches;
/// returns the handle plus the root of every batch-version.
pub fn load_batched<F: IndexFactory>(
    factory: &F,
    entries: &[Entry],
    batch: usize,
) -> (F::Index, Vec<Hash>) {
    load_batched_on(factory, MemStore::new_shared(), entries, batch)
}

/// [`load_batched`] over a caller-supplied store — the grid runner passes
/// a durable backend here; everything else defaults to memory.
pub fn load_batched_on<F: IndexFactory>(
    factory: &F,
    store: siri::SharedStore,
    entries: &[Entry],
    batch: usize,
) -> (F::Index, Vec<Hash>) {
    let mut index = factory.empty(store);
    let mut roots = Vec::new();
    for chunk in entries.chunks(batch.max(1)) {
        index.batch_insert(chunk.to_vec()).expect("load failed");
        roots.push(index.root());
    }
    (index, roots)
}

/// The operation class a latency sample belongs to — the per-verb axis of
/// the BENCH latency schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpVerb {
    Read,
    Write,
    Delete,
    Scan,
}

impl OpVerb {
    pub const ALL: [OpVerb; 4] = [OpVerb::Read, OpVerb::Write, OpVerb::Delete, OpVerb::Scan];

    /// Whether the verb mutates the tree (deletes rewrite paths too).
    pub fn is_write(self) -> bool {
        matches!(self, OpVerb::Write | OpVerb::Delete)
    }

    pub fn name(self) -> &'static str {
        match self {
            OpVerb::Read => "read",
            OpVerb::Write => "write",
            OpVerb::Delete => "delete",
            OpVerb::Scan => "scan",
        }
    }
}

/// Outcome of replaying an operation stream.
#[derive(Debug, Default)]
pub struct WorkloadStats {
    pub reads: usize,
    pub writes: usize,
    /// Delete ops (also counted into `writes`: they mutate the tree).
    pub deletes: usize,
    /// Scan ops (also counted into `reads`); `scan_entries` tallies the
    /// entries their cursors streamed.
    pub scans: usize,
    pub scan_entries: usize,
    pub read_nanos: u64,
    pub write_nanos: u64,
    /// (verb, latency ns) per op, for the distribution figures and the
    /// per-verb percentiles of the BENCH reports.
    pub latencies: Vec<(OpVerb, u64)>,
}

impl WorkloadStats {
    pub fn total_nanos(&self) -> u64 {
        self.read_nanos + self.write_nanos
    }

    pub fn total_ops(&self) -> usize {
        self.reads + self.writes
    }

    /// Latency percentile over the read class (`writes == false`: reads +
    /// scans) or the write class (writes + deletes), in µs.
    pub fn percentile_micros(&self, writes: bool, p: f64) -> f64 {
        Self::percentile(
            self.latencies.iter().filter(|(v, _)| v.is_write() == writes).map(|(_, n)| *n),
            p,
        )
    }

    /// Latency percentile of one verb (µs); 0.0 when the verb never ran.
    pub fn percentile_micros_verb(&self, verb: OpVerb, p: f64) -> f64 {
        Self::percentile(self.latencies.iter().filter(|(v, _)| *v == verb).map(|(_, n)| *n), p)
    }

    /// Number of ops of one verb in the replayed stream.
    pub fn verb_count(&self, verb: OpVerb) -> usize {
        self.latencies.iter().filter(|(v, _)| *v == verb).count()
    }

    fn percentile(samples: impl Iterator<Item = u64>, p: f64) -> f64 {
        let mut lats: Vec<u64> = samples.collect();
        if lats.is_empty() {
            return 0.0;
        }
        lats.sort_unstable();
        let idx = ((lats.len() - 1) as f64 * p).round() as usize;
        lats[idx] as f64 / 1e3
    }
}

/// Replay an op stream against an index, timing each operation. Writes and
/// deletes are applied one at a time (per-op versions), as in the paper's
/// throughput/latency runs; scans stream through the unified range cursor
/// without materializing.
pub fn run_ops<I: SiriIndex>(index: &mut I, ops: &[Op]) -> WorkloadStats {
    use std::ops::Bound;
    let mut stats =
        WorkloadStats { latencies: Vec::with_capacity(ops.len()), ..Default::default() };
    for op in ops {
        match op {
            Op::Read(key) => {
                let t = Instant::now();
                let _ = index.get(key).expect("read failed");
                let n = t.elapsed().as_nanos() as u64;
                stats.reads += 1;
                stats.read_nanos += n;
                stats.latencies.push((OpVerb::Read, n));
            }
            Op::Write(entry) => {
                let t = Instant::now();
                index.insert(&entry.key, entry.value.clone()).expect("write failed");
                let n = t.elapsed().as_nanos() as u64;
                stats.writes += 1;
                stats.write_nanos += n;
                stats.latencies.push((OpVerb::Write, n));
            }
            Op::Delete(key) => {
                let t = Instant::now();
                index.delete(key).expect("delete failed");
                let n = t.elapsed().as_nanos() as u64;
                stats.writes += 1;
                stats.deletes += 1;
                stats.write_nanos += n;
                stats.latencies.push((OpVerb::Delete, n));
            }
            Op::Scan { start, limit } => {
                let t = Instant::now();
                let mut streamed = 0usize;
                for entry in index.range(Bound::Included(start), Bound::Unbounded).take(*limit) {
                    entry.expect("scan failed");
                    streamed += 1;
                }
                let n = t.elapsed().as_nanos() as u64;
                stats.reads += 1;
                stats.scans += 1;
                stats.scan_entries += streamed;
                stats.read_nanos += n;
                stats.latencies.push((OpVerb::Scan, n));
            }
        }
    }
    stats
}

/// Verified-read cost of one structure (Figure 12): encoded proof size
/// and client-side verification latency, for membership proofs over the
/// stream's read keys and range proofs over its scan windows.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ProofCost {
    pub membership_count: u64,
    /// Mean encoded size of a membership proof (bytes).
    pub membership_bytes_avg: f64,
    /// Median client-side verify latency of a membership proof (µs).
    pub membership_verify_us_p50: f64,
    pub scan_count: u64,
    /// Mean encoded size of a verified-scan range proof (bytes).
    pub scan_bytes_avg: f64,
    /// Median client-side verify latency of a range proof (µs).
    pub scan_verify_us_p50: f64,
}

/// Replay the stream's reads as proved lookups and its scans as *verified
/// scans* — prove the scanned window, verify the range proof against the
/// index root — sampling at most `cap` ops of each verb. Every proof is
/// required to verify: a structure that ships a proof its own scheme
/// rejects is a bug, not a measurement.
pub fn measure_proofs<F: IndexFactory>(
    factory: &F,
    index: &F::Index,
    ops: &[Op],
    cap: usize,
) -> ProofCost {
    use std::ops::Bound;
    let scheme = factory.scheme();
    let root = index.root();
    let mut cost = ProofCost::default();

    let mut bytes = 0u64;
    let mut verify_ns = Vec::new();
    for key in ops.iter().filter_map(|op| match op {
        Op::Read(key) => Some(key),
        _ => None,
    }) {
        if verify_ns.len() >= cap {
            break;
        }
        let proof = index.prove(key).expect("proofs: prove failed");
        bytes += proof.encode().len() as u64;
        let t = Instant::now();
        let verdict = siri::verify_anchored_membership(scheme, root, key, &proof);
        verify_ns.push(t.elapsed().as_nanos() as u64);
        assert!(verdict.is_valid(), "{}: membership proof rejected", scheme.structure());
    }
    cost.membership_count = verify_ns.len() as u64;
    cost.membership_bytes_avg = bytes as f64 / verify_ns.len().max(1) as f64;
    cost.membership_verify_us_p50 = WorkloadStats::percentile(verify_ns.into_iter(), 0.50);

    let mut bytes = 0u64;
    let mut verify_ns = Vec::new();
    for (start, limit) in ops.iter().filter_map(|op| match op {
        Op::Scan { start, limit } => Some((start, *limit)),
        _ => None,
    }) {
        if verify_ns.len() >= cap {
            break;
        }
        // Learn the window's end key from the cursor, then prove exactly
        // the entries the scan streamed.
        let mut last = None;
        for entry in index.range(Bound::Included(start), Bound::Unbounded).take(limit) {
            last = Some(entry.expect("proofs: scan failed").key);
        }
        let end = match &last {
            Some(k) => Bound::Included(&k[..]),
            None => Bound::Unbounded,
        };
        let sb = Bound::Included(&start[..]);
        let proof = index.prove_range(sb, end).expect("proofs: prove_range");
        bytes += proof.encode().len() as u64;
        let t = Instant::now();
        let verdict = siri::verify_anchored_range(scheme, root, sb, end, &proof);
        verify_ns.push(t.elapsed().as_nanos() as u64);
        assert!(verdict.is_valid(), "{}: range proof rejected", scheme.structure());
    }
    cost.scan_count = verify_ns.len() as u64;
    cost.scan_bytes_avg = bytes as f64 / verify_ns.len().max(1) as f64;
    cost.scan_verify_us_p50 = WorkloadStats::percentile(verify_ns.into_iter(), 0.50);
    cost
}

/// Reachable page sets for a list of version roots.
pub fn version_page_sets<F: IndexFactory>(
    factory: &F,
    store: &siri::SharedStore,
    roots: &[Hash],
) -> Vec<PageSet> {
    roots.iter().map(|r| factory.open(store.clone(), *r).page_set()).collect()
}

/// One point of a Figure 21-style client-cache sweep: lookup traffic
/// through a [`CachingStore`] of the given capacity.
#[derive(Debug, Clone, Copy)]
pub struct CacheSweepPoint {
    /// Client cache capacity in pages (the sweep's x-axis).
    pub capacity: usize,
    /// Page-cache hit ratio over the whole run (Figure 21's left axis).
    pub hit_ratio: f64,
    /// Modelled remote-fetch latency accumulated (ns) — added to wall time
    /// for client-side latency, the right axis.
    pub synthetic_nanos: u64,
    /// Wall-clock time of the lookups (ns), excluding the synthetic cost.
    pub wall_nanos: u64,
    /// Pages evicted to stay under the capacity bound.
    pub evictions: u64,
}

impl CacheSweepPoint {
    /// Modelled client-side latency per lookup in nanoseconds.
    pub fn client_nanos_per_lookup(&self, lookups: usize) -> f64 {
        (self.wall_nanos + self.synthetic_nanos) as f64 / lookups.max(1) as f64
    }
}

/// Replay `keys` as point lookups through a bounded client cache at each
/// capacity in `capacities`, reproducing the §5.6.1 hit-ratio/latency
/// tradeoff. `open` builds the index handle over the (cache-wrapped) store
/// — pass a closure that also disables the in-process node cache when the
/// *page*-cache effect is what you want to isolate.
pub fn client_cache_sweep<I: SiriIndex>(
    server: &SharedStore,
    open: impl Fn(SharedStore) -> I,
    keys: &[Bytes],
    capacities: &[usize],
    fetch_cost_nanos: u64,
) -> Vec<CacheSweepPoint> {
    capacities
        .iter()
        .map(|&capacity| {
            let client =
                Arc::new(CachingStore::with_capacity(server.clone(), fetch_cost_nanos, capacity));
            let shared: SharedStore = client.clone();
            let index = open(shared);
            let started = Instant::now();
            for key in keys {
                let _ = index.get(key).expect("sweep lookup failed");
            }
            let wall_nanos = started.elapsed().as_nanos() as u64;
            CacheSweepPoint {
                capacity,
                hit_ratio: client.hit_ratio(),
                synthetic_nanos: client.synthetic_nanos(),
                wall_nanos,
                evictions: client.evictions(),
            }
        })
        .collect()
}

/// A latency histogram with fixed bucket width, for the Figure 10–12
/// distribution plots.
pub fn latency_histogram(
    stats: &WorkloadStats,
    writes: bool,
    bucket_micros: f64,
    buckets: usize,
) -> Vec<usize> {
    let mut hist = vec![0usize; buckets];
    for (v, nanos) in &stats.latencies {
        if v.is_write() == writes {
            let us = *nanos as f64 / 1e3;
            let b = ((us / bucket_micros) as usize).min(buckets - 1);
            hist[b] += 1;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri::workloads::YcsbConfig;

    #[test]
    fn load_and_run_roundtrip() {
        let cfg = IndexCfg::ycsb(1024);
        let ycsb = YcsbConfig::default();
        let data = ycsb.dataset(2_000);
        let factory = pos_factory(cfg);
        let (mut idx, roots) = load_batched(&factory, &data, 500);
        assert_eq!(roots.len(), 4);
        assert_eq!(idx.len().unwrap(), 2_000);
        let ops = ycsb.operations(2_000, 200, 50, 0.0, 7);
        let stats = run_ops(&mut idx, &ops);
        assert_eq!(stats.total_ops(), 200);
        assert!(stats.reads > 0 && stats.writes > 0);
        assert!(stats.percentile_micros(false, 0.5) > 0.0);
    }

    #[test]
    fn crud_scan_stream_runs_on_every_structure() {
        let cfg = IndexCfg::ycsb(1024);
        let ycsb = YcsbConfig::default();
        let data = ycsb.dataset(1_000);
        let mix = siri::workloads::OpMix::crud_scan(50, 20, 15, 15).with_scan_limit(10);
        let ops = ycsb.operations_mix(1_000, 400, mix, 0.5, 11);
        for_each_index!(cfg, |name, factory| {
            let (mut idx, _) = load_batched(&factory, &data, 1_000);
            let stats = run_ops(&mut idx, &ops);
            assert_eq!(stats.total_ops(), 400, "{name}");
            assert!(stats.deletes > 0 && stats.scans > 0, "{name}");
            assert!(stats.scan_entries >= stats.scans, "{name} scans streamed nothing");
            assert!(idx.len().unwrap() <= 1_000, "{name} deletes must shrink or hold");
        });
    }

    #[test]
    fn for_each_index_covers_four() {
        let cfg = IndexCfg::ycsb(1024);
        let mut names = Vec::new();
        for_each_index!(cfg, |name, factory| {
            let store = MemStore::new_shared();
            let mut idx = factory.empty(store);
            idx.insert(b"k", bytes::Bytes::from_static(b"v")).unwrap();
            assert!(idx.get(b"k").unwrap().is_some());
            names.push(name);
        });
        assert_eq!(names, vec!["pos-tree", "mbt", "mpt", "mvmb+"]);
    }

    #[test]
    fn cache_sweep_hit_ratio_grows_with_capacity() {
        let cfg = IndexCfg::ycsb(1024);
        let ycsb = YcsbConfig::default();
        let server = MemStore::new_shared();
        let factory = pos_factory(cfg);
        let mut base = factory.empty(server.clone());
        base.batch_insert(ycsb.dataset(3_000)).unwrap();
        let root = base.root();
        let keys: Vec<_> = (0..2_000u64).map(|i| ycsb.key(i % 3_000)).collect();

        let points = client_cache_sweep(
            &server,
            // Node cache off: isolate the page cache under test.
            |store| factory.open(store, root).with_node_cache_capacity(0),
            &keys,
            &[0, 64, 100_000],
            1_000,
        );
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].hit_ratio, 0.0, "capacity 0 cannot hit");
        assert!(points[2].hit_ratio > points[1].hit_ratio, "{points:?}");
        assert!(points[2].hit_ratio > 0.5, "unbounded-ish cache must mostly hit");
        assert!(points[1].evictions > 0, "64-page cache must evict");
        // Synthetic cost shrinks as the hit ratio grows.
        assert!(points[2].synthetic_nanos < points[0].synthetic_nanos);
        assert!(points[0].client_nanos_per_lookup(keys.len()) > 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let stats = WorkloadStats {
            reads: 2,
            read_nanos: 3_000,
            latencies: vec![(OpVerb::Read, 1_000), (OpVerb::Scan, 2_000), (OpVerb::Write, 9_000)],
            ..Default::default()
        };
        let h = latency_histogram(&stats, false, 1.0, 4);
        assert_eq!(h, vec![0, 1, 1, 0]);
    }

    #[test]
    fn per_verb_percentiles_split_the_classes() {
        let stats = WorkloadStats {
            latencies: vec![
                (OpVerb::Read, 1_000),
                (OpVerb::Scan, 5_000),
                (OpVerb::Write, 2_000),
                (OpVerb::Delete, 8_000),
            ],
            ..Default::default()
        };
        assert_eq!(stats.percentile_micros_verb(OpVerb::Read, 0.5), 1.0);
        assert_eq!(stats.percentile_micros_verb(OpVerb::Scan, 0.5), 5.0);
        assert_eq!(stats.percentile_micros_verb(OpVerb::Delete, 0.99), 8.0);
        assert_eq!(stats.verb_count(OpVerb::Write), 1);
        // Class-level percentiles pool {read,scan} and {write,delete}.
        assert_eq!(stats.percentile_micros(false, 1.0), 5.0);
        assert_eq!(stats.percentile_micros(true, 1.0), 8.0);
        // A verb that never ran reports 0, not a panic.
        let empty = WorkloadStats::default();
        assert_eq!(empty.percentile_micros_verb(OpVerb::Scan, 0.5), 0.0);
    }
}
