//! The paper-grid experiment runner (§5, Table 2): every workload on
//! every backend, across all four index structures, measured into one
//! [`Report`] per cell.
//!
//! A cell = one workload (YCSB / wiki / eth) on one backend
//! ([`MemStore`] / [`siri::FileStore`]). Each structure in the cell gets a
//! *fresh* store, is bulk-loaded in batches (write-amplification is
//! metered per commit), then replays a mixed CRUD+scan op stream with
//! per-op timing. Shape, storage and cache counters are snapshotted at
//! the end. The driver binary (`repro --smoke` / `repro grid`) writes
//! each report as `BENCH_<workload>_<backend>.json`.

use std::sync::Arc;
use std::time::Instant;

use siri::workloads::eth::EthConfig;
use siri::workloads::wiki::WikiConfig;
use siri::workloads::ycsb::{Op, YcsbConfig};
use siri::workloads::OpMix;
use siri::{
    Entry, FileStore, FileStoreOptions, FsyncPolicy, IndexFactory, MemStore, SharedStore,
    StructureStats,
};

use crate::harness::{load_batched_on, run_ops, IndexCfg, OpVerb};
use crate::report::{
    index_report, IndexReport, LoadMeasurement, Report, VerbLatency, BENCH_SCHEMA_VERSION,
};
use crate::{for_each_index, RunConfig};

/// SHA-256 hashing throughput of this machine in MB/s — the calibration
/// figure stamped into every BENCH artifact. Hashing is the hot inner
/// loop of every content-addressed write, so it is both a stable CPU
/// proxy and the most relevant one; `bench-diff` uses the ratio of two
/// artifacts' calibrations to compare throughput across machines.
pub fn calibrate_hash_mbps() -> f64 {
    const BUF: usize = 64 * 1024;
    const ROUNDS: usize = 64;
    let buf = vec![0xA5u8; BUF];
    let mut best_nanos = u64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..ROUNDS {
            std::hint::black_box(siri::crypto::sha256(std::hint::black_box(&buf)));
        }
        best_nanos = best_nanos.min(t0.elapsed().as_nanos() as u64);
    }
    (BUF * ROUNDS) as f64 / (best_nanos.max(1) as f64 / 1e9) / 1e6
}

/// The workloads of the paper's §5 grid, in run order.
pub const GRID_WORKLOADS: [&str; 3] = ["ycsb", "wiki", "eth"];

/// Storage backend of a grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    Mem,
    File,
}

impl Backend {
    pub const BOTH: [Backend; 2] = [Backend::Mem, Backend::File];

    pub fn name(self) -> &'static str {
        match self {
            Backend::Mem => "mem",
            Backend::File => "file",
        }
    }

    pub fn parse(s: &str) -> Option<Vec<Backend>> {
        match s {
            "mem" => Some(vec![Backend::Mem]),
            "file" => Some(vec![Backend::File]),
            "both" => Some(Self::BOTH.to_vec()),
            _ => None,
        }
    }
}

/// A fresh store for one (structure, backend) cell; the temp directory of
/// a file-backed store is removed on drop, after the index handles are
/// gone.
struct CellStore {
    store: SharedStore,
    dir: Option<std::path::PathBuf>,
}

impl CellStore {
    fn open(backend: Backend, tag: &str) -> CellStore {
        match backend {
            Backend::Mem => CellStore { store: MemStore::new_shared(), dir: None },
            Backend::File => {
                static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let dir = std::env::temp_dir()
                    .join("siri-grid")
                    .join(format!("{}-{tag}-{n}", std::process::id()));
                let _ = std::fs::remove_dir_all(&dir);
                // Benchmarks, not a database: fsync off, as in env_store().
                let opts =
                    FileStoreOptions { fsync: FsyncPolicy::Never, ..FileStoreOptions::default() };
                let (fs, _) = FileStore::open_with(&dir, opts).expect("grid: temp FileStore");
                CellStore { store: Arc::new(fs), dir: Some(dir) }
            }
        }
    }
}

impl Drop for CellStore {
    fn drop(&mut self) {
        if let Some(dir) = self.dir.take() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Deterministic dataset + op stream of one workload at the given scale.
/// Returns `(initial records, mixed op stream, per-workload index cfg)`.
fn workload_cell(workload: &str, cfg: RunConfig) -> (Vec<Entry>, Vec<Op>, IndexCfg) {
    match workload {
        "ycsb" => {
            let ycsb = YcsbConfig { seed: cfg.seed, ..Default::default() };
            let n = cfg.scaled(100_000);
            let data = ycsb.dataset(n);
            // Table 2's mixed setting: moderate skew, every verb exercised.
            let mix = OpMix::crud_scan(70, 15, 5, 10).with_scan_limit(20);
            let ops = ycsb.operations_mix(n, cfg.ops, mix, 0.5, cfg.seed ^ 0x9d1d);
            (data, ops, IndexCfg::ycsb(cfg.node_bytes))
        }
        "wiki" => {
            let wiki = WikiConfig {
                pages: cfg.scaled(50_000),
                seed: cfg.seed ^ 0x77,
                ..Default::default()
            };
            let data = wiki.initial_dump();
            let pages = wiki.pages as u64;
            let ops = (0..cfg.ops as u64)
                .map(|i| {
                    let id = i.wrapping_mul(0x9E37_79B9) % pages;
                    match i % 20 {
                        0..=11 => Op::Read(wiki.url(id)),
                        12..=16 => {
                            let page = wiki.page(id, 1 + (i / pages.max(1)) as u32);
                            Op::Write(page)
                        }
                        17 => Op::Delete(wiki.url(id)),
                        _ => Op::Scan { start: wiki.url(id), limit: 10 },
                    }
                })
                .collect();
            (data, ops, IndexCfg::wiki(cfg.node_bytes))
        }
        "eth" => {
            let eth = EthConfig { seed: cfg.seed ^ 0x99, ..Default::default() };
            let blocks = (cfg.scaled(30_000) / eth.txs_per_block).max(2) as u64;
            let mut data = Vec::new();
            for b in 0..blocks {
                data.extend(eth.block_entries(b));
            }
            let ops = (0..cfg.ops as u64)
                .map(|i| {
                    let block = i.wrapping_mul(31) % blocks;
                    let tx = (i % eth.txs_per_block as u64) as u32;
                    let key = eth.transaction(block, tx).hash_key();
                    match i % 20 {
                        // Fresh txs append, as new blocks would.
                        12..=16 => {
                            let t = eth.transaction(blocks + i / 20, tx);
                            Op::Write(Entry {
                                key: t.hash_key(),
                                value: siri::Bytes::from(t.rlp_encode()),
                            })
                        }
                        17 => Op::Delete(key),
                        18..=19 => Op::Scan { start: key, limit: 10 },
                        _ => Op::Read(key),
                    }
                })
                .collect();
            (data, ops, IndexCfg::eth(cfg.node_bytes))
        }
        other => panic!("unknown grid workload `{other}` (choose from {GRID_WORKLOADS:?})"),
    }
}

/// Run one grid cell — `workload` on `backend` — across all four index
/// structures, each over a fresh store.
///
/// With `cfg.reps > 1` every structure is measured that many times (a
/// fresh store each repetition — the datasets are deterministic, so all
/// non-timing fields are identical) and the best throughput / lowest
/// latency sample is reported: millisecond-scale smoke phases are
/// otherwise at the mercy of one scheduler hiccup.
pub fn run_cell(workload: &str, backend: Backend, cfg: RunConfig) -> Report {
    let (data, ops, icfg) = workload_cell(workload, cfg);
    let batch = (data.len() / 8).clamp(1, 4_000);
    let mut indexes = Vec::new();
    for_each_index!(icfg, |name, factory| {
        let mut best: Option<IndexReport> = None;
        for _ in 0..cfg.reps.max(1) {
            let cell = CellStore::open(backend, name);
            let rep = run_structure(name, &factory, cell.store.clone(), &data, &ops, batch);
            best = Some(match best.take() {
                None => rep,
                Some(prev) => merge_best(prev, rep),
            });
        }
        indexes.push(best.expect("at least one repetition"));
    });
    Report {
        schema_version: BENCH_SCHEMA_VERSION,
        experiment: format!("{workload}_{}", backend.name()),
        workload: workload.to_string(),
        backend: backend.name().to_string(),
        scale: cfg.scale,
        records: data.len() as u64,
        ops: ops.len() as u64,
        seed: cfg.seed,
        node_bytes: cfg.node_bytes as u64,
        calibration_hash_mbps: calibrate_hash_mbps(),
        sha256_backend: siri::crypto::active_backend().name().to_string(),
        chunker: crate::harness::chunker_kind().name().to_string(),
        shards: crate::harness::shard_config().0,
        adaptive_sharding: crate::harness::shard_config().1,
        indexes,
    }
}

/// Field-wise best of two repetitions: throughput takes the max, latency
/// percentiles the min; everything else is deterministic and must agree
/// (same seed, same data, fresh store each time).
fn merge_best(mut a: IndexReport, b: IndexReport) -> IndexReport {
    debug_assert_eq!(a.nodes, b.nodes, "{}: repetitions must be deterministic", a.index);
    debug_assert_eq!(a.unique_bytes, b.unique_bytes, "{}", a.index);
    a.load_entries_per_sec = a.load_entries_per_sec.max(b.load_entries_per_sec);
    a.ops_per_sec = a.ops_per_sec.max(b.ops_per_sec);
    for (la, lb) in a.latencies.iter_mut().zip(b.latencies.iter()) {
        debug_assert_eq!(la.verb, lb.verb);
        la.p50_us = la.p50_us.min(lb.p50_us);
        la.p95_us = la.p95_us.min(lb.p95_us);
        la.p99_us = la.p99_us.min(lb.p99_us);
    }
    // Proof sizes are deterministic (same tree, same sampled keys); only
    // the verify latencies are timing samples.
    debug_assert_eq!(a.proof_bytes_avg, b.proof_bytes_avg, "{}", a.index);
    a.proof_verify_us_p50 = a.proof_verify_us_p50.min(b.proof_verify_us_p50);
    a.vscan_verify_us_p50 = a.vscan_verify_us_p50.min(b.vscan_verify_us_p50);
    a
}

/// Measure one structure inside a cell: batched load (write amplification
/// per commit), mixed-op replay (per-verb latency), then shape/storage/
/// cache snapshots.
fn run_structure<F>(
    name: &str,
    factory: &F,
    store: SharedStore,
    data: &[Entry],
    ops: &[Op],
    batch: usize,
) -> crate::report::IndexReport
where
    F: IndexFactory,
{
    let payload_bytes: u64 = data.iter().map(|e| (e.key.len() + e.value.len()) as u64).sum();
    let written_before = store.stats().bytes_written;
    let t0 = Instant::now();
    let (mut index, roots) = load_batched_on(factory, store.clone(), data, batch);
    let load = LoadMeasurement {
        entries: data.len() as u64,
        // One version root per batch commit.
        commits: roots.len() as u64,
        nanos: t0.elapsed().as_nanos() as u64,
        payload_bytes,
        bytes_written: store.stats().bytes_written - written_before,
    };

    let stats = run_ops(&mut index, ops);
    let latencies = OpVerb::ALL
        .iter()
        .filter(|v| stats.verb_count(**v) > 0)
        .map(|v| VerbLatency {
            verb: v.name().to_string(),
            count: stats.verb_count(*v) as u64,
            p50_us: stats.percentile_micros_verb(*v, 0.50),
            p95_us: stats.percentile_micros_verb(*v, 0.95),
            p99_us: stats.percentile_micros_verb(*v, 0.99),
        })
        .collect();

    // Snapshot the counters *before* the structure walk: structure_stats()
    // re-reads the whole tree through the store and the node cache, and
    // those near-100%-hit probes would otherwise drown the workload's own
    // hit rates in the report.
    let store_stats = store.stats();
    let node_cache = index.node_cache_stats();
    let structure = index.structure_stats().expect("grid structure stats");
    let mut report = index_report(
        name.to_string(),
        load,
        stats.total_ops() as u64,
        stats.total_nanos(),
        latencies,
        structure,
        store_stats,
        node_cache,
    );

    // Verified reads (schema v4, Figure 12). Measured after the counter
    // snapshots: proving re-walks the tree through the store, and those
    // probes must not pollute the workload's cache hit rates.
    let proofs = crate::harness::measure_proofs(factory, &index, ops, 32);
    report.proof_count = proofs.membership_count;
    report.proof_bytes_avg = proofs.membership_bytes_avg;
    report.proof_verify_us_p50 = proofs.membership_verify_us_p50;
    report.vscan_count = proofs.scan_count;
    report.vscan_bytes_avg = proofs.scan_bytes_avg;
    report.vscan_verify_us_p50 = proofs.scan_verify_us_p50;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        // scaled() floors at 1_000 records; keep ops small for speed.
        RunConfig { scale: 0.001, ops: 120, ..Default::default() }
    }

    #[test]
    fn grid_cell_reports_all_structures_mem() {
        let report = run_cell("ycsb", Backend::Mem, tiny());
        assert_eq!(report.experiment, "ycsb_mem");
        assert_eq!(report.indexes.len(), 4);
        for ix in &report.indexes {
            assert!(ix.ops_per_sec > 0.0, "{}", ix.index);
            assert!(ix.load_entries_per_sec > 0.0, "{}", ix.index);
            assert!(ix.nodes > 0 && ix.entries > 0, "{}", ix.index);
            assert!(ix.write_amplification > 0.0, "{}", ix.index);
            assert!(ix.unique_bytes <= ix.logical_bytes, "{}", ix.index);
            assert!(!ix.latencies.is_empty(), "{}", ix.index);
            // Verified reads were sampled and every proof verified.
            assert!(ix.proof_count > 0 && ix.proof_bytes_avg > 0.0, "{}", ix.index);
            assert!(ix.vscan_count > 0 && ix.vscan_bytes_avg > 0.0, "{}", ix.index);
        }
    }

    #[test]
    fn grid_cell_runs_on_file_backend() {
        let report = run_cell("eth", Backend::File, tiny());
        assert_eq!(report.backend, "file");
        for ix in &report.indexes {
            // Durable framing makes physical writes exceed page bytes.
            assert!(ix.bytes_written > 0, "{}", ix.index);
        }
    }

    #[test]
    fn grid_report_json_round_trips() {
        let report = run_cell("wiki", Backend::Mem, tiny());
        let text = report.to_json().render();
        let back = Report::parse(&text).expect("emitted BENCH JSON must re-parse");
        assert_eq!(back, report);
    }

    #[test]
    #[should_panic(expected = "unknown grid workload")]
    fn unknown_workload_panics() {
        let _ = workload_cell("nope", tiny());
    }
}
