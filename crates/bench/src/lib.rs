//! Shared machinery for the reproduction harness and the Criterion
//! benchmarks: index-agnostic experiment drivers, timing helpers, the
//! plain-text table printer, and the `repro` experiment subsystem — the
//! paper-grid runner ([`grid`]), the machine-readable BENCH report model
//! ([`report`]) and the hand-rolled JSON codec it serializes with.

pub mod grid;
pub mod harness;
pub mod report;
pub mod table;

pub use grid::{run_cell, Backend, GRID_WORKLOADS};
pub use harness::*;
pub use report::{diff_reports, DiffThresholds, IndexReport, Report, BENCH_SCHEMA_VERSION};
pub use table::{Json, Table};

/// Configuration common to all experiments.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Multiplier applied to the paper's dataset sizes (default 0.05 —
    /// laptop scale; 1.0 reproduces the full sizes).
    pub scale: f64,
    /// Operations per measured workload.
    pub ops: usize,
    /// Target node size (the paper tunes ≈1 KB).
    pub node_bytes: usize,
    pub seed: u64,
    /// Timed repetitions per grid measurement; the best (least-disturbed)
    /// sample is reported. 1 everywhere except the short CI smoke runs,
    /// where scheduler noise would otherwise dominate millisecond phases.
    pub reps: usize,
    /// Writer-thread ceiling for the multi-writer concurrency cells
    /// (`repro concurrency` sweeps 1..=threads in powers of two).
    pub threads: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { scale: 0.05, ops: 5_000, node_bytes: 1024, seed: 42, reps: 1, threads: 4 }
    }
}

impl RunConfig {
    /// Scale a paper-sized record count, with a sane floor.
    pub fn scaled(&self, paper_size: usize) -> usize {
        ((paper_size as f64 * self.scale) as usize).max(1_000)
    }
}
