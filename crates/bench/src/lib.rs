//! Shared machinery for the reproduction harness and the Criterion
//! benchmarks: index-agnostic experiment drivers, timing helpers and a
//! plain-text table printer.

pub mod harness;
pub mod table;

pub use harness::*;
pub use table::Table;

/// Configuration common to all experiments.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Multiplier applied to the paper's dataset sizes (default 0.05 —
    /// laptop scale; 1.0 reproduces the full sizes).
    pub scale: f64,
    /// Operations per measured workload.
    pub ops: usize,
    /// Target node size (the paper tunes ≈1 KB).
    pub node_bytes: usize,
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { scale: 0.05, ops: 5_000, node_bytes: 1024, seed: 42 }
    }
}

impl RunConfig {
    /// Scale a paper-sized record count, with a sane floor.
    pub fn scaled(&self, paper_size: usize) -> usize {
        ((paper_size as f64 * self.scale) as usize).max(1_000)
    }
}
