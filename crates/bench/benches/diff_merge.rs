//! Criterion micro-benchmarks for diff and merge — Figure 8's companion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siri::workloads::YcsbConfig;
use siri::{merge, Entry, MergeStrategy, SiriIndex};
use siri_bench::harness::{
    load_batched, mbt_factory, mpt_factory, mvmb_factory, pos_factory, IndexCfg,
};

const N: usize = 20_000;
const DELTA: usize = 200;

fn bench_diff(c: &mut Criterion) {
    let ycsb = YcsbConfig::default();
    let data = ycsb.dataset(N);
    let changes: Vec<Entry> = (0..DELTA as u64).map(|i| ycsb.entry(i * 97 % N as u64, 1)).collect();
    let cfg = IndexCfg::ycsb(1024);

    macro_rules! bench_index {
        ($group:expr, $name:expr, $factory:expr) => {{
            let (a, _) = load_batched(&$factory, &data, 8_000);
            let mut b = a.clone();
            b.batch_insert(changes.clone()).unwrap();
            $group.bench_function(BenchmarkId::from_parameter($name), |bch| {
                bch.iter(|| std::hint::black_box(a.diff(&b).unwrap().len()))
            });
        }};
    }

    let mut group = c.benchmark_group("diff_20k_delta200");
    group.sample_size(10);
    bench_index!(group, "pos-tree", pos_factory(cfg));
    bench_index!(group, "mbt", mbt_factory(cfg));
    bench_index!(group, "mpt", mpt_factory(cfg));
    bench_index!(group, "mvmb+", mvmb_factory(cfg));
    group.finish();

    // Merge on the favoured structure, disjoint key ranges.
    let mut group = c.benchmark_group("merge_20k");
    group.sample_size(10);
    let factory = pos_factory(cfg);
    let (left, _) = load_batched(&factory, &data, 8_000);
    let extra: Vec<Entry> = (0..DELTA as u64).map(|i| ycsb.entry(N as u64 + i, 0)).collect();
    let mut right = left.clone();
    right.batch_insert(extra).unwrap();
    group.bench_function("pos-tree", |b| {
        b.iter(|| {
            let out = merge(&left, &right, MergeStrategy::Strict).unwrap();
            std::hint::black_box(out.added_from_right)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_diff);
criterion_main!(benches);
