//! Durable-backend benchmarks: what running the same index on disk costs.
//!
//! Four questions, all against the segmented `FileStore`:
//!
//! * **cold open** — how long does recovery (manifest parse + per-segment
//!   digest-verified scan) take for an N-record index?
//! * **get** — disk-resident point reads (positioned `read_at` through the
//!   OS page cache) vs memory-resident ones.
//! * **commit** — write-batch throughput at the three fsync policies.
//! * **compaction** — reclaim rate when retired versions are swept and the
//!   live pages are rewritten into a fresh generation.
//!
//! `DURABLE_N` overrides the dataset size (CI smoke-runs use a small value
//! so this executes on every push).

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siri::workloads::YcsbConfig;
use siri::{
    FileStore, FileStoreOptions, FsyncPolicy, MemStore, PosParams, PosTree, Reclaim, SharedStore,
    SiriIndex,
};

fn dataset_size() -> usize {
    std::env::var("DURABLE_N").ok().and_then(|v| v.parse().ok()).unwrap_or(20_000)
}

fn bench_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("siri-durable-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn opts(fsync: FsyncPolicy) -> FileStoreOptions {
    FileStoreOptions { fsync, ..FileStoreOptions::default() }
}

/// Build an N-record POS-Tree on a fresh `FileStore`, returning its root.
fn populate(path: &std::path::Path, n: usize) -> siri::Hash {
    let (fs, _) = FileStore::open_with(path, opts(FsyncPolicy::Never)).unwrap();
    let fs = Arc::new(fs);
    let mut t = PosTree::new(fs.clone() as SharedStore, PosParams::default());
    t.batch_insert(YcsbConfig::default().dataset(n)).unwrap();
    fs.sync().unwrap();
    t.root()
}

fn bench_durable(c: &mut Criterion) {
    let n = dataset_size();
    let ycsb = YcsbConfig::default();

    // ── cold-open recovery ──────────────────────────────────────────────
    let cold_path = bench_dir("cold-open");
    let cold_root = populate(&cold_path, n);
    {
        let mut group = c.benchmark_group(format!("durable_cold_open_{n}"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::from_parameter("recovery-scan"), |b| {
            b.iter(|| {
                let (fs, recovered) =
                    FileStore::open_with(&cold_path, opts(FsyncPolicy::Never)).unwrap();
                assert!(recovered > 0);
                std::hint::black_box(fs);
            })
        });
        group.finish();
    }

    // ── point reads: disk vs memory ─────────────────────────────────────
    {
        let (fs, _) = FileStore::open_with(&cold_path, opts(FsyncPolicy::Never)).unwrap();
        let disk_idx = PosTree::open(Arc::new(fs) as SharedStore, PosParams::default(), cold_root);
        let mem_store = MemStore::new_shared();
        let mut mem_idx = PosTree::new(mem_store, PosParams::default());
        mem_idx.batch_insert(ycsb.dataset(n)).unwrap();

        let mut group = c.benchmark_group(format!("durable_get_{n}"));
        group.sample_size(20);
        let mut k = 0u64;
        group.bench_function(BenchmarkId::from_parameter("file"), |b| {
            b.iter(|| {
                k = (k + 7919) % n as u64;
                std::hint::black_box(disk_idx.get(&ycsb.key(k)).unwrap().unwrap());
            })
        });
        let mut k = 0u64;
        group.bench_function(BenchmarkId::from_parameter("mem"), |b| {
            b.iter(|| {
                k = (k + 7919) % n as u64;
                std::hint::black_box(mem_idx.get(&ycsb.key(k)).unwrap().unwrap());
            })
        });
        group.finish();
    }

    // ── commit throughput per fsync policy ──────────────────────────────
    {
        let mut group = c.benchmark_group("durable_commit_100");
        group.sample_size(10);
        let policies: [(&str, Option<FsyncPolicy>); 4] = [
            ("mem", None),
            ("file-never", Some(FsyncPolicy::Never)),
            ("file-every8", Some(FsyncPolicy::EveryN(8))),
            ("file-commit", Some(FsyncPolicy::OnCommit)),
        ];
        for (label, policy) in policies {
            let (store, durable): (SharedStore, Option<Arc<FileStore>>) = match policy {
                None => (MemStore::new_shared(), None),
                Some(p) => {
                    let path = bench_dir(&format!("commit-{label}"));
                    let (fs, _) = FileStore::open_with(&path, opts(p)).unwrap();
                    let fs = Arc::new(fs);
                    (fs.clone() as SharedStore, Some(fs))
                }
            };
            let mut idx = PosTree::new(store, PosParams::default());
            idx.batch_insert(ycsb.dataset(n.min(5_000))).unwrap();
            let mut v = 1u32;
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                b.iter(|| {
                    v += 1;
                    let batch: Vec<_> =
                        (0..100u64).map(|i| ycsb.entry((i * 37 + v as u64) % 5_000, v)).collect();
                    idx.batch_insert(batch).unwrap();
                    if let Some(fs) = &durable {
                        fs.note_commit().unwrap();
                    }
                })
            });
        }
        group.finish();
    }

    // ── compaction reclaim rate (one-shot: sweeping is not repeatable) ──
    {
        let path = bench_dir("compaction");
        let (fs, _) = FileStore::open_with(&path, opts(FsyncPolicy::Never)).unwrap();
        let fs = Arc::new(fs);
        let mut head = PosTree::new(fs.clone() as SharedStore, PosParams::default());
        head.batch_insert(ycsb.dataset(n)).unwrap();
        for v in 1..=10u32 {
            head.batch_insert(
                (0..(n as u64 / 20)).map(|i| ycsb.entry(i * 13 % n as u64, v)).collect(),
            )
            .unwrap();
        }
        let disk_before = fs.disk_bytes();
        let live = head.page_set();
        let start = Instant::now();
        let (pages, bytes) = fs.sweep(&live).unwrap();
        let dt = start.elapsed();
        let disk_after = fs.disk_bytes();
        assert!(pages > 0, "retired versions must reclaim pages");
        assert_eq!(head.len().unwrap(), n, "head must survive compaction");
        println!(
            "durable_compaction_{n}: reclaimed {pages} pages / {bytes} B in {dt:?} \
             ({:.1} MB/s reclaim rate; disk {disk_before} B -> {disk_after} B, {:.1}% live)",
            bytes as f64 / dt.as_secs_f64() / 1e6,
            disk_after as f64 / disk_before as f64 * 100.0,
        );
    }
}

criterion_group!(benches, bench_durable);
criterion_main!(benches);
