//! Criterion micro-benchmarks for Merkle proof generation/verification —
//! the tamper-evidence cost every SIRI structure pays (§2.3).

use criterion::{criterion_group, criterion_main, Criterion};
use siri::workloads::YcsbConfig;
use siri::{MerkleBucketTree, MerklePatriciaTrie, MvmbTree, PosTree, SiriIndex};
use siri_bench::harness::{
    load_batched, mbt_factory, mpt_factory, mvmb_factory, pos_factory, IndexCfg,
};

const N: usize = 20_000;

fn bench_proofs(c: &mut Criterion) {
    let ycsb = YcsbConfig::default();
    let data = ycsb.dataset(N);
    let cfg = IndexCfg::ycsb(1024);

    let mut g = c.benchmark_group("proofs_20k");
    g.sample_size(20);

    macro_rules! per_index {
        ($name:expr, $factory:expr, $ty:ty) => {{
            let (idx, _) = load_batched(&$factory, &data, 8_000);
            let mut i = 0u64;
            g.bench_function(concat!($name, "/prove"), |b| {
                b.iter(|| {
                    i = (i + 1) % N as u64;
                    std::hint::black_box(idx.prove(&ycsb.key(i)).unwrap().len())
                })
            });
            let key = ycsb.key(7);
            let proof = idx.prove(&key).unwrap();
            let root = idx.root();
            g.bench_function(concat!($name, "/verify"), |b| {
                b.iter(|| std::hint::black_box(<$ty>::verify_proof(root, &key, &proof).is_valid()))
            });
        }};
    }

    per_index!("pos-tree", pos_factory(cfg), PosTree);
    per_index!("mbt", mbt_factory(cfg), MerkleBucketTree);
    per_index!("mpt", mpt_factory(cfg), MerklePatriciaTrie);
    per_index!("mvmb+", mvmb_factory(cfg), MvmbTree);
    g.finish();
}

criterion_group!(benches, bench_proofs);
criterion_main!(benches);
