//! Criterion micro-benchmarks for Merkle proof generation/verification —
//! the tamper-evidence cost every SIRI structure pays (§2.3): single-key
//! membership, range windows, and batched multi-key proofs, prove and
//! verify sides both.
//!
//! `PROOFS_SMOKE=1` (CI) trims the dataset and sample counts: the point
//! of the CI leg is that every prove/verify path runs and verifies on
//! every push, not stable timings.

use std::ops::Bound;

use criterion::{criterion_group, criterion_main, Criterion};
use siri::workloads::YcsbConfig;
use siri::{IndexFactory, SiriIndex};
use siri_bench::harness::{
    load_batched, mbt_factory, mpt_factory, mvmb_factory, pos_factory, IndexCfg,
};

fn bench_proofs(c: &mut Criterion) {
    let smoke = std::env::var_os("PROOFS_SMOKE").is_some();
    let n: usize = if smoke { 2_000 } else { 20_000 };
    let ycsb = YcsbConfig::default();
    let data = ycsb.dataset(n);
    let cfg = IndexCfg::ycsb(1024);

    let mut g = c.benchmark_group(if smoke { "proofs_smoke" } else { "proofs_20k" });
    g.sample_size(if smoke { 10 } else { 20 });

    macro_rules! per_index {
        ($name:expr, $factory:expr) => {{
            let factory = $factory;
            let scheme = factory.scheme();
            let (idx, _) = load_batched(&factory, &data, 8_000);
            let root = idx.root();

            // Membership: prove and verify a rotating key.
            let mut i = 0u64;
            g.bench_function(concat!($name, "/prove"), |b| {
                b.iter(|| {
                    i = (i + 1) % n as u64;
                    std::hint::black_box(idx.prove(&ycsb.key(i)).unwrap().len())
                })
            });
            let key = ycsb.key(7);
            let proof = idx.prove(&key).unwrap();
            g.bench_function(concat!($name, "/verify"), |b| {
                b.iter(|| {
                    std::hint::black_box(
                        siri::verify_anchored_membership(scheme, root, &key, &proof).is_valid(),
                    )
                })
            });

            // Range: a ~20-entry window (the YCSB scan shape).
            let start = ycsb.key(n as u64 / 2);
            let end = ycsb.key(n as u64 / 2 + 20);
            let sb = Bound::Included(&start[..]);
            let eb = Bound::Excluded(&end[..]);
            g.bench_function(concat!($name, "/prove_range"), |b| {
                b.iter(|| std::hint::black_box(idx.prove_range(sb, eb).unwrap().len()))
            });
            let range_proof = idx.prove_range(sb, eb).unwrap();
            g.bench_function(concat!($name, "/verify_range"), |b| {
                b.iter(|| {
                    std::hint::black_box(
                        siri::verify_anchored_range(scheme, root, sb, eb, &range_proof).is_valid(),
                    )
                })
            });

            // Batch: 16 keys spread across the key space, shared interior
            // pages deduplicated.
            let keys: Vec<siri::Bytes> =
                (0..16u64).map(|k| ycsb.key(k * (n as u64 / 16))).collect();
            g.bench_function(concat!($name, "/prove_batch"), |b| {
                b.iter(|| std::hint::black_box(idx.prove_batch(&keys).unwrap().len()))
            });
            let batch_proof = idx.prove_batch(&keys).unwrap();
            g.bench_function(concat!($name, "/verify_batch"), |b| {
                b.iter(|| {
                    std::hint::black_box(
                        siri::verify_anchored_batch(scheme, root, &keys, &batch_proof).is_valid(),
                    )
                })
            });
        }};
    }

    per_index!("pos-tree", pos_factory(cfg));
    per_index!("mbt", mbt_factory(cfg));
    per_index!("mpt", mpt_factory(cfg));
    per_index!("mvmb+", mvmb_factory(cfg));
    g.finish();
}

criterion_group!(benches, bench_proofs);
criterion_main!(benches);
