//! Criterion micro-benchmarks for the chunking strategies — quantifies the
//! Figure 22 mechanism: POS-Tree's hash-pattern internal boundaries vs
//! Prolly's sliding-window re-hashing, and bulk build cost per structure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use siri::workloads::YcsbConfig;
use siri::{MemStore, PosParams, PosTree, SiriIndex};

const N: usize = 20_000;

fn bench_chunking(c: &mut Criterion) {
    let ycsb = YcsbConfig::default();
    let data = ycsb.dataset(N);
    let bytes: usize = data.iter().map(|e| e.key.len() + e.value.len()).sum();

    let mut group = c.benchmark_group("bulk_build_20k");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes as u64));
    for (name, params) in [
        ("pos-tree-hashpattern", PosParams::default()),
        ("prolly-rolling-window", PosParams::noms()),
        ("pos-tree-4k", PosParams::default().with_node_bytes(4096)),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut t = PosTree::new(MemStore::new_shared(), params);
                t.batch_insert(data.clone()).unwrap();
                std::hint::black_box(t.root())
            })
        });
    }
    group.finish();

    // Incremental batch-update cost: the streaming pass-through updater.
    let mut group = c.benchmark_group("incremental_update_batch100");
    group.sample_size(10);
    let mut base = PosTree::new(MemStore::new_shared(), PosParams::default());
    base.batch_insert(data).unwrap();
    let updates: Vec<siri::Entry> =
        (0..100u64).map(|i| ycsb.entry(i * 131 % N as u64, 2)).collect();
    group.bench_function("pos-tree", |b| {
        b.iter(|| {
            let mut v = base.clone();
            v.batch_insert(updates.clone()).unwrap();
            std::hint::black_box(v.root())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_chunking);
criterion_main!(benches);
