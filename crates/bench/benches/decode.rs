//! Ablation: zero-copy page decoding vs copying decoding.
//!
//! DESIGN.md commits to `Bytes`-sliced decodes on the hot read path; this
//! bench quantifies that choice. The gap is the per-lookup cost of copying
//! every key/value out of each visited page (roughly 2× on 1 KB pages).

use criterion::{criterion_group, criterion_main, Criterion};
use siri::pos_tree::Node;
use siri::workloads::YcsbConfig;
use siri::{MemStore, NodeStore, PosParams, PosTree, SiriIndex};

fn bench_decode(c: &mut Criterion) {
    let ycsb = YcsbConfig::default();
    let store = std::sync::Arc::new(MemStore::new());
    let shared: siri::SharedStore = store.clone();
    let mut t = PosTree::new(shared.clone(), PosParams::default());
    t.batch_insert(ycsb.dataset(5_000)).unwrap();

    // Grab a representative leaf page and an internal page.
    let pages: Vec<bytes::Bytes> =
        t.page_set().iter().map(|(h, _)| shared.get(h).unwrap()).collect();
    let leaf =
        pages.iter().find(|p| matches!(Node::decode(p), Ok(Node::Leaf { .. }))).unwrap().clone();
    let internal = pages
        .iter()
        .find(|p| matches!(Node::decode(p), Ok(Node::Internal { .. })))
        .unwrap()
        .clone();

    let mut g = c.benchmark_group("page_decode");
    g.sample_size(30);
    g.bench_function("leaf/zero-copy", |b| {
        b.iter(|| std::hint::black_box(Node::decode_zc(&leaf).unwrap()))
    });
    g.bench_function("leaf/copying", |b| {
        b.iter(|| std::hint::black_box(Node::decode(&leaf).unwrap()))
    });
    g.bench_function("internal/zero-copy", |b| {
        b.iter(|| std::hint::black_box(Node::decode_zc(&internal).unwrap()))
    });
    g.bench_function("internal/copying", |b| {
        b.iter(|| std::hint::black_box(Node::decode(&internal).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
