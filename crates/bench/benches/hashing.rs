//! Criterion micro-benchmarks for the SHA-256 backends — the content-
//! addressing primitive underneath every page write. Measures one-shot
//! digest throughput and the multi-lane [`hash_many`] batch path, on the
//! scalar backend and (when the CPU has crypto extensions) the accelerated
//! one, at the page sizes the index structures actually emit (~1 KB nodes,
//! §5's tuning) plus a large-buffer ceiling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use siri::crypto::{available_backends, digest_with, hash_many_with};

fn bench_hashing(c: &mut Criterion) {
    // HASHING_SMOKE=1 (CI) trims samples and the large-buffer size: the
    // point there is that the kernels run and report, not tight numbers.
    let smoke = std::env::var_os("HASHING_SMOKE").is_some();
    let samples = if smoke { 10 } else { 20 };
    let oneshot_sizes: &[usize] = if smoke { &[1 << 10] } else { &[1 << 10, 64 << 10] };

    // One-shot digest throughput per backend and input size.
    for &size in oneshot_sizes {
        let buf: Vec<u8> = (0..size).map(|i| (i * 31 % 251) as u8).collect();
        let mut group = c.benchmark_group(format!("sha256_oneshot_{}b", size));
        group.sample_size(samples);
        group.throughput(Throughput::Bytes(size as u64));
        for backend in available_backends() {
            group.bench_function(BenchmarkId::from_parameter(backend.name()), |b| {
                b.iter(|| std::hint::black_box(digest_with(backend, &buf)))
            });
        }
        group.finish();
    }

    // Sibling-batch hashing: 32 pages of ~1 KB, the shape an index commit
    // hands to the store. Compares the multi-lane path against a
    // sequential per-page loop on every backend.
    let pages: Vec<Vec<u8>> =
        (0..32usize).map(|p| (0..1024).map(|i| ((i * 31 + p * 7) % 251) as u8).collect()).collect();
    let views: Vec<&[u8]> = pages.iter().map(|p| p.as_slice()).collect();
    let total: u64 = pages.iter().map(|p| p.len() as u64).sum();
    let mut group = c.benchmark_group("sha256_batch_32x1k");
    group.sample_size(samples);
    group.throughput(Throughput::Bytes(total));
    for backend in available_backends() {
        group.bench_function(BenchmarkId::new("multi_lane", backend.name()), |b| {
            b.iter(|| std::hint::black_box(hash_many_with(backend, &views)))
        });
        group.bench_function(BenchmarkId::new("sequential", backend.name()), |b| {
            b.iter(|| {
                let out: Vec<_> = views.iter().map(|v| digest_with(backend, v)).collect();
                std::hint::black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hashing);
criterion_main!(benches);
