//! Cache-on vs cache-off point lookups across the four indexes, plus the
//! Figure 21-style client-cache capacity sweep.
//!
//! The acceptance bar for the read-path overhaul: on a ≥100k-entry index,
//! cached point lookups must be ≥2× faster than the uncached path for MPT
//! and POS-Tree. `cached` uses the default decoded-node cache (warmed by
//! one pass); `uncached` sets capacity 0, so every fetch pays
//! store-lock + page-clone + decode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siri::workloads::YcsbConfig;
use siri::{
    MemStore, MerkleBucketTree, MerklePatriciaTrie, MvmbParams, MvmbTree, PosParams, PosTree,
    SiriIndex,
};
use siri_bench::harness::client_cache_sweep;

const N: usize = 100_000;

/// Cache sized to hold the whole decoded working set of a 100k-entry
/// index — the "cache covers the hot set" end of the sweep, where the
/// §5.6.1 hit ratio approaches 1.
const WARM_CACHE_NODES: usize = 512 * 1024;

fn bench_cached_reads(c: &mut Criterion) {
    let ycsb = YcsbConfig::default();
    let data = ycsb.dataset(N);
    // Pre-generated lookup keys so the measured loop is pure index work.
    let lookup_keys: Vec<_> = (0..N as u64).map(|i| ycsb.key(i)).collect();

    // One index per structure over its own store, built once.
    macro_rules! bench_pair {
        ($group:expr, $name:expr, $build:expr) => {{
            let idx = $build;
            // Cached: node cache sized to the working set, fully warmed.
            let cached = idx.clone().with_node_cache_capacity(WARM_CACHE_NODES);
            for key in &lookup_keys {
                let _ = cached.get(key).unwrap();
            }
            let mut i = 0usize;
            $group.bench_function(BenchmarkId::new($name, "cached"), |b| {
                b.iter(|| {
                    i = (i + 7) % N;
                    std::hint::black_box(cached.get(&lookup_keys[i]).unwrap())
                })
            });
            // Uncached: capacity 0 — every lookup re-fetches and re-decodes.
            let uncached = idx.with_node_cache_capacity(0);
            let mut i = 0usize;
            $group.bench_function(BenchmarkId::new($name, "uncached"), |b| {
                b.iter(|| {
                    i = (i + 7) % N;
                    std::hint::black_box(uncached.get(&lookup_keys[i]).unwrap())
                })
            });
        }};
    }

    let mut group = c.benchmark_group("lookup_100k");
    group.sample_size(20);
    bench_pair!(group, "mpt", {
        let mut t = MerklePatriciaTrie::new(MemStore::new_shared());
        for chunk in data.chunks(10_000) {
            t.batch_insert(chunk.to_vec()).unwrap();
        }
        t
    });
    bench_pair!(group, "pos-tree", {
        let mut t = PosTree::new(MemStore::new_shared(), PosParams::default());
        t.batch_insert(data.clone()).unwrap();
        t
    });
    bench_pair!(group, "mbt", {
        let mut t = MerkleBucketTree::new(MemStore::new_shared(), 4096, 32).unwrap();
        for chunk in data.chunks(10_000) {
            t.batch_insert(chunk.to_vec()).unwrap();
        }
        t
    });
    bench_pair!(group, "mvmb+", {
        let mut t = MvmbTree::new(MemStore::new_shared(), MvmbParams::for_node_size(1024, 271, 10));
        t.batch_insert(data.clone()).unwrap();
        t
    });
    group.finish();

    // Figure 21-style capacity sweep: lookups through a bounded client
    // page cache with a 100 µs modelled remote fetch. Printed once per
    // capacity (hit ratio + modelled client latency), then the pure
    // wall-clock cost is measured per capacity.
    let server = MemStore::new_shared();
    let mut base = PosTree::new(server.clone(), PosParams::default());
    base.batch_insert(ycsb.dataset(20_000)).unwrap();
    let root = base.root();
    let keys: Vec<_> = (0..10_000u64).map(|i| ycsb.key(i % 20_000)).collect();
    let params = PosParams::default();
    let points = client_cache_sweep(
        &server,
        |store| PosTree::open(store, params, root).with_node_cache_capacity(0),
        &keys,
        &[64, 512, 4096, 32_768],
        100_000,
    );
    for p in &points {
        println!(
            "client_cache_sweep/pos-tree capacity {:>6}: hit ratio {:.3}, \
             modelled client latency {:>10.0} ns/lookup, {} evictions",
            p.capacity,
            p.hit_ratio,
            p.client_nanos_per_lookup(keys.len()),
            p.evictions
        );
    }
    let mut group = c.benchmark_group("client_cache_wall_clock");
    group.sample_size(10);
    for capacity in [512usize, 32_768] {
        let point_keys = keys.clone();
        let server = server.clone();
        group.bench_function(BenchmarkId::from_parameter(capacity), move |b| {
            let client = std::sync::Arc::new(siri::CachingStore::with_capacity(
                server.clone(),
                0, // wall clock only; the modelled cost is reported above
                capacity,
            ));
            let idx = PosTree::open(client, params, root).with_node_cache_capacity(0);
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % point_keys.len();
                std::hint::black_box(idx.get(&point_keys[i]).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cached_reads);
criterion_main!(benches);
