//! Cursor-based range reads vs. materializing full scans.
//!
//! The API redesign's claim, measured: a bounded `range` cursor walks only
//! the window's leaf path while the old read pattern (`scan()` + filter)
//! materializes and sorts the entire dataset. At 100k entries the gap is
//! orders of magnitude for the ordered structures; MBT — whose hashing
//! destroys order — pays O(B) bucket pins either way, which is exactly the
//! paper's point about hash-based layouts and range queries.
//!
//! `RANGE_SCAN_N` overrides the dataset size (CI smoke-runs use a small
//! value so the bench executes on every push without burning minutes).

use std::ops::Bound;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siri::workloads::YcsbConfig;
use siri::SiriIndex;
use siri_bench::harness::{
    load_batched, mbt_factory, mpt_factory, mvmb_factory, pos_factory, IndexCfg,
};

/// Window width in entries (what a paginated UI or a YCSB-E scan pulls).
const WINDOW: usize = 100;

fn dataset_size() -> usize {
    let n = std::env::var("RANGE_SCAN_N").ok().and_then(|v| v.parse().ok()).unwrap_or(100_000);
    // The window-start rotation needs room past the window.
    n.max(WINDOW * 2)
}

fn bench_range_scan(c: &mut Criterion) {
    let n = dataset_size();
    let ycsb = YcsbConfig::default();
    // Sorted keys so windows can be addressed by dataset rank.
    let mut sorted_keys: Vec<_> = (0..n as u64).map(|i| ycsb.key(i)).collect();
    sorted_keys.sort_unstable();
    let data = ycsb.dataset(n);
    let cfg = IndexCfg::ycsb(1024);

    macro_rules! bench_index {
        ($group:expr, $name:expr, $factory:expr, $cursor:expr) => {{
            let (idx, _) = load_batched(&$factory, &data, 10_000);
            let mut w = 0usize;
            $group.bench_function(BenchmarkId::from_parameter($name), |b| {
                b.iter(|| {
                    // Rotate the window start across the key space.
                    w = (w + 7919) % (n - WINDOW);
                    let start = &sorted_keys[w];
                    let end = &sorted_keys[w + WINDOW];
                    let streamed: usize = if $cursor {
                        idx.range(Bound::Included(&start[..]), Bound::Excluded(&end[..]))
                            .map(|e| e.expect("range failed"))
                            .count()
                    } else {
                        // The pre-redesign read pattern: materialize
                        // everything, filter afterwards.
                        idx.scan()
                            .expect("scan failed")
                            .into_iter()
                            .filter(|e| e.key >= *start && e.key < *end)
                            .count()
                    };
                    std::hint::black_box(streamed);
                })
            });
        }};
    }

    let mut group = c.benchmark_group(format!("range_cursor_{}", n));
    group.sample_size(10);
    bench_index!(group, "pos-tree", pos_factory(cfg), true);
    bench_index!(group, "mbt", mbt_factory(cfg), true);
    bench_index!(group, "mpt", mpt_factory(cfg), true);
    bench_index!(group, "mvmb+", mvmb_factory(cfg), true);
    group.finish();

    let mut group = c.benchmark_group(format!("range_materialize_{}", n));
    group.sample_size(10);
    bench_index!(group, "pos-tree", pos_factory(cfg), false);
    bench_index!(group, "mbt", mbt_factory(cfg), false);
    bench_index!(group, "mpt", mpt_factory(cfg), false);
    bench_index!(group, "mvmb+", mvmb_factory(cfg), false);
    group.finish();
}

criterion_group!(benches, bench_range_scan);
criterion_main!(benches);
