//! Multi-writer engine benchmarks: what the `&self`-concurrent Forkbase
//! front-end buys (and costs).
//!
//! Four cells:
//!
//! * **disjoint branches** — N writers committing to N branches through
//!   one shared engine; per-branch head slots mean zero CAS conflicts, so
//!   throughput should track the core count (flat on a 1-core box).
//! * **one shared branch** — N writers hammering `master`; optimistic
//!   commits retry on lost head races. Reports the conflict/commit ratio
//!   and checks model agreement (disjoint keys ⇒ the final count is
//!   order-independent).
//! * **group commit** — the same disjoint-branch write burst on a durable
//!   `FileStore` under `FsyncPolicy::OnCommit` vs `FsyncPolicy::Group`:
//!   the group policy must ack every commit while issuing strictly fewer
//!   fsyncs.
//! * **commit latency** — a criterion measurement of the single-writer
//!   `&self` commit path (the CAS loop's uncontended overhead).
//!
//! `MULTI_WRITER_COMMITS` overrides the per-writer commit count (CI smoke
//! runs use a small value so this executes on every push).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siri::workloads::YcsbConfig;
use siri::{
    Entry, FileStoreOptions, Forkbase, FsyncPolicy, PosFactory, PosParams, SiriIndex, WriteBatch,
};
use siri_bench::harness::run_concurrent_writers;

const BATCH: usize = 50;

fn commits_per_writer() -> usize {
    std::env::var("MULTI_WRITER_COMMITS").ok().and_then(|v| v.parse().ok()).unwrap_or(50)
}

fn bench_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("siri-multi-writer-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

/// The shared multi-writer burst (`siri_bench::harness`) with this
/// bench's batch shape: `BATCH` disjoint-keyed puts per commit.
fn run_writers(
    fb: &Arc<Forkbase<PosFactory>>,
    writers: usize,
    commits: usize,
    branch_of: impl Fn(usize) -> String,
) -> Duration {
    run_concurrent_writers(fb, writers, commits, branch_of, |t, c| {
        let mut batch = WriteBatch::new();
        for i in 0..BATCH {
            batch.put(format!("w{t:02}-c{c:04}-{i:03}").into_bytes(), vec![(t ^ c ^ i) as u8; 64]);
        }
        batch
    })
}

fn kops(ops: usize, dt: Duration) -> f64 {
    ops as f64 / dt.as_secs_f64() / 1e3
}

fn bench_multi_writer(c: &mut Criterion) {
    let commits = commits_per_writer();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // ── disjoint branches: per-slot heads, no CAS conflicts ─────────────
    for writers in [1usize, 2, 4, 8] {
        let fb = Arc::new(Forkbase::new(PosFactory(PosParams::default()), 0));
        for t in 0..writers {
            fb.fork("master", &format!("w{t}")).unwrap();
        }
        let dt = run_writers(&fb, writers, commits, |t| format!("w{t}"));
        let stats = fb.engine_stats();
        assert_eq!(stats.conflicts, 0, "disjoint branches must not contend");
        for t in 0..writers {
            assert_eq!(
                fb.head(&format!("w{t}")).unwrap().len().unwrap(),
                commits * BATCH,
                "writer {t} must land every batch"
            );
        }
        println!(
            "multi_writer_disjoint: writers={writers} cores={cores} commits={} \
             throughput={:.1} kops/s conflicts=0",
            stats.commits,
            kops(writers * commits * BATCH, dt),
        );
    }

    // ── one shared branch: optimistic CAS with re-apply ─────────────────
    for writers in [2usize, 4, 8] {
        let fb = Arc::new(Forkbase::new(PosFactory(PosParams::default()), 0));
        let dt = run_writers(&fb, writers, commits, |_| "master".to_string());
        let stats = fb.engine_stats();
        let expected = writers * commits * BATCH;
        assert_eq!(
            fb.head("master").unwrap().len().unwrap(),
            expected,
            "every contended batch must apply exactly once"
        );
        println!(
            "multi_writer_contended: writers={writers} commits={} conflicts={} \
             ({:.2} retries/commit) throughput={:.1} kops/s",
            stats.commits,
            stats.conflicts,
            stats.conflicts as f64 / stats.commits.max(1) as f64,
            kops(expected, dt),
        );
    }

    // ── group commit vs fsync-per-commit on the durable store ───────────
    {
        let writers = 4usize;
        let durable_commits = commits.min(25);
        let mut fsyncs_by_policy = Vec::new();
        for (label, policy) in [
            ("commit", FsyncPolicy::OnCommit),
            ("group2ms", FsyncPolicy::Group(Duration::from_millis(2))),
        ] {
            let path = bench_dir(&format!("group-{label}"));
            let opts = FileStoreOptions { fsync: policy, ..FileStoreOptions::default() };
            let fb = Arc::new(
                Forkbase::new_durable(PosFactory(PosParams::default()), &path, opts, 0).unwrap(),
            );
            for t in 0..writers {
                fb.fork("master", &format!("w{t}")).unwrap();
            }
            let dt = run_writers(&fb, writers, durable_commits, |t| format!("w{t}"));
            let stats = fb.server_stats();
            println!(
                "multi_writer_group[{label}]: writers={writers} commits={} fsyncs={} \
                 throughput={:.1} kops/s",
                stats.commits,
                stats.fsyncs,
                kops(writers * durable_commits * BATCH, dt),
            );
            fsyncs_by_policy.push((stats.commits, stats.fsyncs));
            let _ = std::fs::remove_dir_all(&path);
        }
        let (commit_commits, commit_fsyncs) = fsyncs_by_policy[0];
        let (group_commits, group_fsyncs) = fsyncs_by_policy[1];
        assert_eq!(commit_fsyncs, commit_commits, "OnCommit pays one fsync per commit");
        assert!(
            group_fsyncs < group_commits,
            "group commit must batch: {group_fsyncs} fsyncs for {group_commits} commits"
        );
    }

    // ── uncontended commit latency through the &self CAS path ───────────
    {
        let ycsb = YcsbConfig::default();
        let fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", ycsb.dataset(5_000)).unwrap();
        let mut group = c.benchmark_group("multi_writer_commit_latency");
        group.sample_size(20);
        let mut v = 1u32;
        group.bench_function(BenchmarkId::from_parameter("single-writer-cas"), |b| {
            b.iter(|| {
                v += 1;
                let batch: Vec<Entry> =
                    (0..BATCH as u64).map(|i| ycsb.entry((i * 37 + v as u64) % 5_000, v)).collect();
                std::hint::black_box(fb.put("master", batch).unwrap());
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_multi_writer);
criterion_main!(benches);
