//! Criterion micro-benchmarks for lookup and update — the per-operation
//! companion of Figure 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siri::workloads::YcsbConfig;
use siri::SiriIndex;
use siri_bench::harness::{
    load_batched, mbt_factory, mpt_factory, mvmb_factory, pos_factory, IndexCfg,
};

const N: usize = 20_000;

fn bench_ops(c: &mut Criterion) {
    let ycsb = YcsbConfig::default();
    let data = ycsb.dataset(N);
    let cfg = IndexCfg::ycsb(1024);

    macro_rules! bench_index {
        ($group:expr, $name:expr, $factory:expr, $op:ident) => {{
            let (idx, _) = load_batched(&$factory, &data, 8_000);
            let mut i = 0u64;
            $group.bench_function(BenchmarkId::from_parameter($name), |b| {
                b.iter(|| {
                    i = (i + 1) % N as u64;
                    match stringify!($op) {
                        "lookup" => {
                            std::hint::black_box(idx.get(&ycsb.key(i)).unwrap());
                        }
                        _ => {
                            let mut w = idx.clone();
                            w.insert(&ycsb.key(i), ycsb.value(i, 1)).unwrap();
                            std::hint::black_box(w.root());
                        }
                    }
                })
            });
        }};
    }

    let mut group = c.benchmark_group("lookup_20k");
    group.sample_size(20);
    bench_index!(group, "pos-tree", pos_factory(cfg), lookup);
    bench_index!(group, "mbt", mbt_factory(cfg), lookup);
    bench_index!(group, "mpt", mpt_factory(cfg), lookup);
    bench_index!(group, "mvmb+", mvmb_factory(cfg), lookup);
    group.finish();

    let mut group = c.benchmark_group("update_20k");
    group.sample_size(10);
    bench_index!(group, "pos-tree", pos_factory(cfg), update);
    bench_index!(group, "mbt", mbt_factory(cfg), update);
    bench_index!(group, "mpt", mpt_factory(cfg), update);
    bench_index!(group, "mvmb+", mvmb_factory(cfg), update);
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
