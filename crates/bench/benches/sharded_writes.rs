//! Sharded branch-head benchmarks (ISSUE 8): what partitioning one
//! branch's head into per-key-range CAS slots buys under write
//! contention.
//!
//! Three cells:
//!
//! * **contended single slot vs sharded** — 8 writers hammering ONE
//!   branch with disjoint key ranges, on the classic single-slot head
//!   (every commit races every other) and on a pinned-8-shard head
//!   (routing makes the writers conflict-free). The acceptance target is
//!   a ≥2x commit-throughput win for the sharded head with *zero*
//!   per-shard conflicts.
//! * **spanning batches** — batches crossing all shards, measuring the
//!   multi-shard publish (manifest page + grouped swaps) against the
//!   single-slot equivalent.
//! * **parallel bulk load** — `Forkbase::bulk_load` building shard
//!   sub-trees on 1/2/4/8 threads, criterion-timed.
//!
//! `MULTI_WRITER_COMMITS` overrides the per-writer commit count (CI smoke
//! runs use a small value so this executes on every push).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siri::workloads::YcsbConfig;
use siri::{
    Entry, Forkbase, MemStore, PosFactory, PosParams, ShardingPolicy, SiriIndex, WriteBatch,
};
use siri_bench::harness::run_concurrent_writers;

const BATCH: usize = 50;
const WRITERS: usize = 8;

fn commits_per_writer() -> usize {
    std::env::var("MULTI_WRITER_COMMITS").ok().and_then(|v| v.parse().ok()).unwrap_or(50)
}

fn engine(policy: ShardingPolicy) -> Arc<Forkbase<PosFactory>> {
    Arc::new(Forkbase::with_sharding(
        PosFactory(PosParams::default()),
        MemStore::new_shared(),
        policy,
        0,
    ))
}

/// Writer `t`'s batch `c`: `BATCH` puts whose first key byte pins them to
/// shard `t` of the uniform `WRITERS`-way partition — the same keys hit
/// the same leaves on the single-slot engine, so the comparison isolates
/// head contention, not tree shape.
fn range_batch(t: usize, c: usize) -> WriteBatch {
    let mut b = WriteBatch::new();
    let lead = (t * 256 / WRITERS + 1) as u8;
    for i in 0..BATCH {
        let mut key = vec![lead];
        key.extend_from_slice(format!("w{t:02}-c{c:04}-{i:03}").as_bytes());
        b.put(key, vec![(t ^ c ^ i) as u8; 64]);
    }
    b
}

fn kops(ops: usize, dt: Duration) -> f64 {
    ops as f64 / dt.as_secs_f64() / 1e3
}

fn bench_sharded_writes(c: &mut Criterion) {
    let commits = commits_per_writer();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // ── one contended branch: single slot vs pinned shards ──────────────
    let ops = WRITERS * commits * BATCH;
    let single = engine(ShardingPolicy::single());
    let dt_single =
        run_concurrent_writers(&single, WRITERS, commits, |_| "master".into(), range_batch);
    let single_stats = single.engine_stats();
    assert_eq!(single.head("master").unwrap().len().unwrap(), ops, "single-slot lost a batch");

    let sharded = engine(ShardingPolicy::pinned(WRITERS));
    let dt_sharded =
        run_concurrent_writers(&sharded, WRITERS, commits, |_| "master".into(), range_batch);
    let sharded_stats = sharded.engine_stats();
    assert_eq!(sharded.head("master").unwrap().len().unwrap(), ops, "sharded head lost a batch");
    assert_eq!(sharded_stats.conflicts, 0, "disjoint-shard writers must not conflict");
    for s in sharded.shard_stats("master").unwrap() {
        assert_eq!(s.conflicts, 0, "per-shard conflict counters must stay zero");
    }
    println!(
        "sharded_writes/contended ({cores} core(s)): single-slot {:.1} kops/s \
         ({} conflicts), {WRITERS}-shard {:.1} kops/s (0 conflicts), speedup {:.2}x",
        kops(ops, dt_single),
        single_stats.conflicts,
        kops(ops, dt_sharded),
        dt_single.as_secs_f64() / dt_sharded.as_secs_f64().max(1e-9),
    );

    // Criterion cell: the steady-state contended commit, both heads. One
    // writer-burst per iteration keeps the measurement comparable.
    let mut group = c.benchmark_group("contended_commits");
    group.sample_size(10);
    for (label, policy) in
        [("single_slot", ShardingPolicy::single()), ("sharded_8", ShardingPolicy::pinned(WRITERS))]
    {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let fb = engine(policy);
                run_concurrent_writers(
                    &fb,
                    WRITERS,
                    commits.min(10),
                    |_| "master".into(),
                    range_batch,
                )
            })
        });
    }
    group.finish();

    // ── spanning batches: the multi-shard publish path ──────────────────
    let mut group = c.benchmark_group("spanning_batch_commit");
    group.sample_size(10);
    for (label, policy) in
        [("single_slot", ShardingPolicy::single()), ("sharded_8", ShardingPolicy::pinned(8))]
    {
        let fb = engine(policy);
        let mut c_no = 0usize;
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut batch = WriteBatch::new();
                for shard in 0..8usize {
                    let mut key = vec![(shard * 32 + 1) as u8];
                    key.extend_from_slice(format!("span-{c_no:06}").as_bytes());
                    batch.put(key, vec![shard as u8; 64]);
                }
                c_no += 1;
                fb.commit("master", batch).unwrap()
            })
        });
    }
    group.finish();

    // ── parallel bulk load ──────────────────────────────────────────────
    let data: Vec<Entry> = YcsbConfig::default().dataset(20_000);
    let mut group = c.benchmark_group("bulk_load_20k");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| {
                let fb = engine(ShardingPolicy::single());
                fb.bulk_load("loaded", data.clone(), threads).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_writes);
criterion_main!(benches);
