//! Property tests: every codec round-trips arbitrary values, and decoding
//! arbitrary garbage never panics (it errors).

use proptest::prelude::*;
use siri_encoding::{rlp, varint, Nibbles, RlpItem};

/// Arbitrary RLP item, depth-bounded.
fn arb_rlp() -> impl Strategy<Value = RlpItem> {
    let leaf = proptest::collection::vec(proptest::num::u8::ANY, 0..80).prop_map(RlpItem::bytes);
    leaf.prop_recursive(3, 24, 6, |inner| {
        proptest::collection::vec(inner, 0..6).prop_map(RlpItem::list)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn rlp_round_trips(item in arb_rlp()) {
        let enc = item.encode();
        prop_assert_eq!(enc.len(), item.encoded_len());
        prop_assert_eq!(RlpItem::decode_all(&enc).unwrap(), item);
    }

    #[test]
    fn rlp_decode_never_panics(bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..200)) {
        // Any result is fine; panicking or hanging is not.
        let _ = RlpItem::decode_all(&bytes);
        let _ = rlp::decode_partial(&bytes);
    }

    #[test]
    fn rlp_uint_round_trips(v in proptest::num::u64::ANY) {
        let item = RlpItem::uint(v);
        prop_assert_eq!(item.as_uint().unwrap(), v);
        prop_assert_eq!(RlpItem::decode_all(&item.encode()).unwrap().as_uint().unwrap(), v);
    }

    #[test]
    fn varint_round_trips(v in proptest::num::u64::ANY) {
        let mut buf = Vec::new();
        varint::write(&mut buf, v);
        prop_assert_eq!(buf.len(), varint::len(v));
        let (got, rest) = varint::read(&buf).unwrap();
        prop_assert_eq!(got, v);
        prop_assert!(rest.is_empty());
    }

    #[test]
    fn varint_read_never_panics(bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..16)) {
        let _ = varint::read(&bytes);
    }

    #[test]
    fn hex_prefix_round_trips(
        nibbles in proptest::collection::vec(0u8..16, 0..40),
        leaf in proptest::bool::ANY,
    ) {
        let path = Nibbles::from_raw(nibbles);
        let enc = path.hex_prefix_encode(leaf);
        let (dec, dec_leaf) = Nibbles::hex_prefix_decode(&enc).unwrap();
        prop_assert_eq!(dec, path);
        prop_assert_eq!(dec_leaf, leaf);
    }

    #[test]
    fn nibbles_key_round_trip(key in proptest::collection::vec(proptest::num::u8::ANY, 0..64)) {
        prop_assert_eq!(Nibbles::from_key(&key).to_key().unwrap(), key);
    }
}
