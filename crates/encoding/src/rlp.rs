//! Recursive Length Prefix (RLP) — Ethereum's canonical serialization.
//!
//! RLP encodes two kinds of items: byte strings and lists of items. The
//! paper uses RLP twice: MPT nodes are RLP lists (§3.4.1, as in Ethereum),
//! and the Ethereum transaction workload stores RLP-encoded raw transactions
//! (§5.1.3). This is a complete encoder/decoder for both item kinds,
//! including canonical-form validation on decode.
//!
//! Encoding rules (yellow paper appendix B):
//! * single byte < 0x80: itself
//! * string 0–55 bytes: `0x80 + len`, then the bytes
//! * string > 55 bytes: `0xb7 + len(len)`, big-endian length, bytes
//! * list with payload 0–55 bytes: `0xc0 + len`, then items
//! * list with payload > 55 bytes: `0xf7 + len(len)`, big-endian length, items

use std::fmt;

/// A decoded RLP item: a byte string or a list of items.
#[derive(Clone, PartialEq, Eq)]
pub enum RlpItem {
    Bytes(Vec<u8>),
    List(Vec<RlpItem>),
}

impl fmt::Debug for RlpItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlpItem::Bytes(b) => write!(f, "Bytes(0x{})", hexish(b)),
            RlpItem::List(items) => f.debug_list().entries(items).finish(),
        }
    }
}

fn hexish(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

/// Errors from [`decode_partial`] / [`RlpItem::decode_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RlpError {
    /// Input ended before the announced length.
    Truncated,
    /// Trailing bytes after the top-level item.
    TrailingBytes,
    /// Non-minimal length encoding or a single byte encoded long-form.
    NonCanonical,
    /// Length prefix overflows usize.
    LengthOverflow,
    /// Decoder expected one kind of item and found the other.
    TypeMismatch { expected: &'static str },
}

impl fmt::Display for RlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlpError::Truncated => write!(f, "rlp: input truncated"),
            RlpError::TrailingBytes => write!(f, "rlp: trailing bytes after item"),
            RlpError::NonCanonical => write!(f, "rlp: non-canonical encoding"),
            RlpError::LengthOverflow => write!(f, "rlp: length overflows usize"),
            RlpError::TypeMismatch { expected } => write!(f, "rlp: expected {expected}"),
        }
    }
}

impl std::error::Error for RlpError {}

impl RlpItem {
    pub fn bytes(b: impl Into<Vec<u8>>) -> Self {
        RlpItem::Bytes(b.into())
    }

    pub fn list(items: impl Into<Vec<RlpItem>>) -> Self {
        RlpItem::List(items.into())
    }

    /// Encode an unsigned integer as a minimal big-endian byte string (the
    /// Ethereum scalar convention: zero is the empty string).
    pub fn uint(v: u64) -> Self {
        if v == 0 {
            return RlpItem::Bytes(Vec::new());
        }
        let be = v.to_be_bytes();
        let skip = be.iter().take_while(|&&b| b == 0).count();
        RlpItem::Bytes(be[skip..].to_vec())
    }

    /// Decode a scalar encoded via [`RlpItem::uint`].
    pub fn as_uint(&self) -> Result<u64, RlpError> {
        let b = self.as_bytes()?;
        if b.len() > 8 {
            return Err(RlpError::LengthOverflow);
        }
        if b.first() == Some(&0) {
            return Err(RlpError::NonCanonical); // leading zeros are forbidden
        }
        let mut v = 0u64;
        for &byte in b {
            v = v << 8 | byte as u64;
        }
        Ok(v)
    }

    pub fn as_bytes(&self) -> Result<&[u8], RlpError> {
        match self {
            RlpItem::Bytes(b) => Ok(b),
            RlpItem::List(_) => Err(RlpError::TypeMismatch { expected: "bytes" }),
        }
    }

    pub fn as_list(&self) -> Result<&[RlpItem], RlpError> {
        match self {
            RlpItem::List(l) => Ok(l),
            RlpItem::Bytes(_) => Err(RlpError::TypeMismatch { expected: "list" }),
        }
    }

    /// Serialize this item.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Exact length of [`RlpItem::encode`]'s output, computed without
    /// allocating — node codecs use this to pre-size buffers.
    pub fn encoded_len(&self) -> usize {
        match self {
            RlpItem::Bytes(b) => {
                if b.len() == 1 && b[0] < 0x80 {
                    1
                } else {
                    prefix_len(b.len()) + b.len()
                }
            }
            RlpItem::List(items) => {
                let payload: usize = items.iter().map(|i| i.encoded_len()).sum();
                prefix_len(payload) + payload
            }
        }
    }

    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            RlpItem::Bytes(b) => {
                if b.len() == 1 && b[0] < 0x80 {
                    out.push(b[0]);
                } else {
                    write_prefix(out, 0x80, b.len());
                    out.extend_from_slice(b);
                }
            }
            RlpItem::List(items) => {
                let payload: usize = items.iter().map(|i| i.encoded_len()).sum();
                write_prefix(out, 0xc0, payload);
                for item in items {
                    item.encode_into(out);
                }
            }
        }
    }

    /// Decode exactly one item consuming the whole input.
    pub fn decode_all(input: &[u8]) -> Result<RlpItem, RlpError> {
        let (item, rest) = decode_partial(input)?;
        if !rest.is_empty() {
            return Err(RlpError::TrailingBytes);
        }
        Ok(item)
    }
}

fn prefix_len(payload: usize) -> usize {
    if payload <= 55 {
        1
    } else {
        1 + be_len(payload)
    }
}

/// Exact encoded length of `payload` as an RLP string, including the
/// single-byte literal form.
pub fn str_encoded_len(payload: &[u8]) -> usize {
    if payload.len() == 1 && payload[0] < 0x80 {
        1
    } else {
        prefix_len(payload.len()) + payload.len()
    }
}

/// Stream one RLP string into `out` — the allocation-free counterpart of
/// `RlpItem::bytes(..).encode_into(..)` for codecs that already hold the
/// payload as a slice.
pub fn write_str(out: &mut Vec<u8>, payload: &[u8]) {
    if payload.len() == 1 && payload[0] < 0x80 {
        out.push(payload[0]);
    } else {
        write_prefix(out, 0x80, payload.len());
        out.extend_from_slice(payload);
    }
}

/// Length of a string header for a `payload_len`-byte payload. Only valid
/// when the string does *not* take the single-byte literal form (i.e.
/// `payload_len != 1` or the byte is ≥ 0x80); [`write_str_header`] has the
/// same precondition.
pub fn str_header_len(payload_len: usize) -> usize {
    prefix_len(payload_len)
}

/// Write a string header so the caller can assemble the payload in place
/// (e.g. a marker byte followed by a borrowed value, with no intermediate
/// buffer). See [`str_header_len`] for the single-byte-form precondition.
pub fn write_str_header(out: &mut Vec<u8>, payload_len: usize) {
    write_prefix(out, 0x80, payload_len);
}

/// Length of a list header for a `payload_len`-byte payload.
pub fn list_header_len(payload_len: usize) -> usize {
    prefix_len(payload_len)
}

/// Write a list header; the caller then streams the `payload_len` bytes of
/// already-encoded items.
pub fn write_list_header(out: &mut Vec<u8>, payload_len: usize) {
    write_prefix(out, 0xc0, payload_len);
}

fn be_len(v: usize) -> usize {
    (usize::BITS as usize / 8) - v.leading_zeros() as usize / 8
}

fn write_prefix(out: &mut Vec<u8>, base: u8, payload: usize) {
    if payload <= 55 {
        out.push(base + payload as u8);
    } else {
        let n = be_len(payload);
        out.push(base + 55 + n as u8);
        out.extend_from_slice(&payload.to_be_bytes()[std::mem::size_of::<usize>() - n..]);
    }
}

/// Decode one item from the front of `input`; return it and the remainder.
pub fn decode_partial(input: &[u8]) -> Result<(RlpItem, &[u8]), RlpError> {
    let (&first, rest) = input.split_first().ok_or(RlpError::Truncated)?;
    match first {
        0x00..=0x7f => Ok((RlpItem::Bytes(vec![first]), rest)),
        0x80..=0xb7 => {
            let len = (first - 0x80) as usize;
            let (payload, rest) = split_checked(rest, len)?;
            if len == 1 && payload[0] < 0x80 {
                return Err(RlpError::NonCanonical); // should have been a single byte
            }
            Ok((RlpItem::Bytes(payload.to_vec()), rest))
        }
        0xb8..=0xbf => {
            let len_len = (first - 0xb7) as usize;
            let (len, rest) = read_be_len(rest, len_len)?;
            if len <= 55 {
                return Err(RlpError::NonCanonical); // short string long-form
            }
            let (payload, rest) = split_checked(rest, len)?;
            Ok((RlpItem::Bytes(payload.to_vec()), rest))
        }
        0xc0..=0xf7 => {
            let len = (first - 0xc0) as usize;
            let (payload, rest) = split_checked(rest, len)?;
            Ok((RlpItem::List(decode_list_payload(payload)?), rest))
        }
        0xf8..=0xff => {
            let len_len = (first - 0xf7) as usize;
            let (len, rest) = read_be_len(rest, len_len)?;
            if len <= 55 {
                return Err(RlpError::NonCanonical); // short list long-form
            }
            let (payload, rest) = split_checked(rest, len)?;
            Ok((RlpItem::List(decode_list_payload(payload)?), rest))
        }
    }
}

/// Zero-copy parse of one top-level RLP **list of byte strings**: returns
/// the payload range of every element, indexed into `input`.
///
/// This is the shape of every MPT node (a 17- or 2-string list), and the
/// ranges let the node codec slice keys/values straight out of a
/// refcounted page instead of copying them through [`RlpItem`] — the MPT
/// counterpart of the POS-Tree `decode_zc` hot path.
///
/// Validation is identical to [`decode_partial`]: canonical-form rules are
/// enforced, trailing bytes are rejected, and a nested list inside the
/// payload is a `TypeMismatch` (MPT nodes never contain one).
pub fn flat_list_ranges(input: &[u8]) -> Result<Vec<std::ops::Range<usize>>, RlpError> {
    let (&first, _) = input.split_first().ok_or(RlpError::Truncated)?;
    let (payload_start, payload_len) = match first {
        0xc0..=0xf7 => (1usize, (first - 0xc0) as usize),
        0xf8..=0xff => {
            let len_len = (first - 0xf7) as usize;
            let (len, _) = read_be_len(&input[1..], len_len)?;
            if len <= 55 {
                return Err(RlpError::NonCanonical); // short list long-form
            }
            (1 + len_len, len)
        }
        _ => return Err(RlpError::TypeMismatch { expected: "list" }),
    };
    let payload_end = payload_start.checked_add(payload_len).ok_or(RlpError::LengthOverflow)?;
    if payload_end > input.len() {
        return Err(RlpError::Truncated);
    }
    if payload_end != input.len() {
        return Err(RlpError::TrailingBytes);
    }

    let mut ranges = Vec::new();
    let mut pos = payload_start;
    while pos < payload_end {
        let first = input[pos];
        let (start, len) = match first {
            0x00..=0x7f => (pos, 1usize),
            0x80..=0xb7 => {
                let len = (first - 0x80) as usize;
                if len == 1 {
                    let b = *input.get(pos + 1).ok_or(RlpError::Truncated)?;
                    if b < 0x80 {
                        return Err(RlpError::NonCanonical); // should be a single byte
                    }
                }
                (pos + 1, len)
            }
            0xb8..=0xbf => {
                let len_len = (first - 0xb7) as usize;
                let (len, _) = read_be_len(&input[pos + 1..], len_len)?;
                if len <= 55 {
                    return Err(RlpError::NonCanonical); // short string long-form
                }
                (pos + 1 + len_len, len)
            }
            _ => return Err(RlpError::TypeMismatch { expected: "bytes" }),
        };
        let end = start.checked_add(len).ok_or(RlpError::LengthOverflow)?;
        if end > payload_end {
            return Err(RlpError::Truncated);
        }
        ranges.push(start..end);
        pos = end;
    }
    Ok(ranges)
}

fn decode_list_payload(mut payload: &[u8]) -> Result<Vec<RlpItem>, RlpError> {
    let mut items = Vec::new();
    while !payload.is_empty() {
        let (item, rest) = decode_partial(payload)?;
        items.push(item);
        payload = rest;
    }
    Ok(items)
}

fn split_checked(input: &[u8], len: usize) -> Result<(&[u8], &[u8]), RlpError> {
    if input.len() < len {
        return Err(RlpError::Truncated);
    }
    Ok(input.split_at(len))
}

fn read_be_len(input: &[u8], len_len: usize) -> Result<(usize, &[u8]), RlpError> {
    if len_len > std::mem::size_of::<usize>() {
        return Err(RlpError::LengthOverflow);
    }
    let (len_bytes, rest) = split_checked(input, len_len)?;
    if len_bytes.first() == Some(&0) {
        return Err(RlpError::NonCanonical); // leading zero in length
    }
    let mut len = 0usize;
    for &b in len_bytes {
        len = len.checked_shl(8).ok_or(RlpError::LengthOverflow)? | b as usize;
    }
    Ok((len, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(item: &RlpItem) {
        let enc = item.encode();
        assert_eq!(enc.len(), item.encoded_len(), "encoded_len mismatch");
        assert_eq!(&RlpItem::decode_all(&enc).unwrap(), item);
    }

    #[test]
    fn canonical_vectors_from_ethereum_spec() {
        // ("dog") -> [0x83, 'd', 'o', 'g']
        assert_eq!(RlpItem::bytes(&b"dog"[..]).encode(), vec![0x83, b'd', b'o', b'g']);
        // ("cat","dog") list
        assert_eq!(
            RlpItem::list(vec![RlpItem::bytes(&b"cat"[..]), RlpItem::bytes(&b"dog"[..])]).encode(),
            vec![0xc8, 0x83, b'c', b'a', b't', 0x83, b'd', b'o', b'g']
        );
        // empty string -> 0x80
        assert_eq!(RlpItem::bytes(Vec::new()).encode(), vec![0x80]);
        // empty list -> 0xc0
        assert_eq!(RlpItem::list(Vec::new()).encode(), vec![0xc0]);
        // 0x00 -> itself
        assert_eq!(RlpItem::bytes(vec![0x00]).encode(), vec![0x00]);
        // 0x0f -> itself
        assert_eq!(RlpItem::bytes(vec![0x0f]).encode(), vec![0x0f]);
        // 0x0400 -> [0x82, 0x04, 0x00]
        assert_eq!(RlpItem::uint(1024).encode(), vec![0x82, 0x04, 0x00]);
        // set-theoretic representation of three: [ [], [[]], [ [], [[]] ] ]
        let three = RlpItem::list(vec![
            RlpItem::list(Vec::new()),
            RlpItem::list(vec![RlpItem::list(Vec::new())]),
            RlpItem::list(vec![
                RlpItem::list(Vec::new()),
                RlpItem::list(vec![RlpItem::list(Vec::new())]),
            ]),
        ]);
        assert_eq!(three.encode(), vec![0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0]);
    }

    #[test]
    fn long_string_and_long_list() {
        let lorem = vec![b'x'; 1024];
        let item = RlpItem::bytes(lorem.clone());
        let enc = item.encode();
        assert_eq!(enc[0], 0xb9); // 0xb7 + 2 length bytes
        assert_eq!(&enc[1..3], &[0x04, 0x00]);
        rt(&item);

        let list = RlpItem::list(vec![RlpItem::bytes(lorem); 3]);
        let enc = list.encode();
        assert_eq!(enc[0], 0xf9); // 0xf7 + 2 length bytes
        rt(&list);
    }

    #[test]
    fn uint_round_trips() {
        for v in [0u64, 1, 127, 128, 255, 256, 1024, u32::MAX as u64, u64::MAX] {
            let item = RlpItem::uint(v);
            rt(&item);
            assert_eq!(item.as_uint().unwrap(), v);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let tx = RlpItem::list(vec![
            RlpItem::uint(42),                        // nonce
            RlpItem::uint(20_000_000_000),            // gas price
            RlpItem::uint(21_000),                    // gas limit
            RlpItem::bytes(vec![0xaa; 20]),           // to
            RlpItem::uint(1_000_000_000_000_000_000), // value
            RlpItem::bytes(vec![0xde, 0xad, 0xbe]),   // payload
        ]);
        rt(&tx);
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(RlpItem::decode_all(&[0x83, b'd', b'o']), Err(RlpError::Truncated));
        assert_eq!(RlpItem::decode_all(&[0xb9, 0x04]), Err(RlpError::Truncated));
        assert_eq!(RlpItem::decode_all(&[]), Err(RlpError::Truncated));
    }

    #[test]
    fn rejects_trailing() {
        assert_eq!(RlpItem::decode_all(&[0x80, 0x00]), Err(RlpError::TrailingBytes));
    }

    #[test]
    fn rejects_non_canonical() {
        // single byte < 0x80 wrapped in a string header
        assert_eq!(RlpItem::decode_all(&[0x81, 0x05]), Err(RlpError::NonCanonical));
        // short string with long-form header
        assert_eq!(RlpItem::decode_all(&[0xb8, 0x01, 0x99]), Err(RlpError::NonCanonical));
        // length with leading zero
        assert_eq!(RlpItem::decode_all(&[0xb9, 0x00, 0x38]), Err(RlpError::NonCanonical));
    }

    #[test]
    fn type_mismatch_errors() {
        let b = RlpItem::bytes(vec![1, 2, 3]);
        assert!(matches!(b.as_list(), Err(RlpError::TypeMismatch { .. })));
        let l = RlpItem::list(Vec::new());
        assert!(matches!(l.as_bytes(), Err(RlpError::TypeMismatch { .. })));
    }

    #[test]
    fn uint_rejects_leading_zero_and_overflow() {
        assert_eq!(RlpItem::bytes(vec![0x00, 0x01]).as_uint(), Err(RlpError::NonCanonical));
        assert_eq!(RlpItem::bytes(vec![1; 9]).as_uint(), Err(RlpError::LengthOverflow));
    }

    #[test]
    fn flat_list_ranges_match_decoded_items() {
        // A 17-ish string list with every header form: single byte, short
        // string, empty string, long string.
        let items = vec![
            RlpItem::bytes(vec![0x05]),
            RlpItem::bytes(b"short".to_vec()),
            RlpItem::bytes(Vec::new()),
            RlpItem::bytes(vec![0xaa; 60]),
        ];
        let list = RlpItem::list(items.clone());
        let enc = list.encode();
        let ranges = flat_list_ranges(&enc).unwrap();
        assert_eq!(ranges.len(), items.len());
        for (range, item) in ranges.iter().zip(&items) {
            assert_eq!(&enc[range.clone()], item.as_bytes().unwrap());
        }
        // Empty list → no ranges.
        assert_eq!(flat_list_ranges(&RlpItem::list(Vec::new()).encode()).unwrap(), vec![]);
    }

    #[test]
    fn flat_list_ranges_reject_bad_input() {
        // Not a list.
        assert!(matches!(
            flat_list_ranges(&RlpItem::bytes(b"x".to_vec()).encode()),
            Err(RlpError::TypeMismatch { .. })
        ));
        // Nested list inside.
        let nested = RlpItem::list(vec![RlpItem::list(Vec::new())]).encode();
        assert!(matches!(flat_list_ranges(&nested), Err(RlpError::TypeMismatch { .. })));
        // Truncated and trailing input.
        let good = RlpItem::list(vec![RlpItem::bytes(b"abc".to_vec())]).encode();
        assert!(matches!(flat_list_ranges(&good[..good.len() - 1]), Err(RlpError::Truncated)));
        let mut trailing = good.clone();
        trailing.push(0x00);
        assert!(matches!(flat_list_ranges(&trailing), Err(RlpError::TrailingBytes)));
        // Non-canonical single byte wrapped in a string header.
        assert!(matches!(flat_list_ranges(&[0xc2, 0x81, 0x05]), Err(RlpError::NonCanonical)));
        // Ranges agree with decode_partial on every canonical node-like list.
        let probe = RlpItem::list(vec![RlpItem::bytes(vec![7u8; 56]); 2]).encode();
        assert_eq!(flat_list_ranges(&probe).unwrap().len(), 2);
    }

    #[test]
    fn streaming_writers_match_item_encoder() {
        for payload in
            [vec![], vec![0x05], vec![0x80], b"short".to_vec(), vec![7u8; 55], vec![7u8; 300]]
        {
            let via_item = RlpItem::bytes(payload.clone()).encode();
            let mut streamed = Vec::new();
            write_str(&mut streamed, &payload);
            assert_eq!(streamed, via_item);
            assert_eq!(str_encoded_len(&payload), via_item.len());
            // Split header/payload form agrees whenever it is legal.
            if payload.len() != 1 || payload[0] >= 0x80 {
                let mut split = Vec::new();
                write_str_header(&mut split, payload.len());
                assert_eq!(split.len(), str_header_len(payload.len()));
                split.extend_from_slice(&payload);
                assert_eq!(split, via_item);
            }
        }
        // List headers agree with the item encoder on both header forms.
        for n in [0usize, 3, 55, 56, 300] {
            let items = vec![RlpItem::bytes(vec![0x05u8]); n];
            let via_item = RlpItem::list(items).encode();
            let payload = n; // each 0x05 is a single-byte literal
            let mut streamed = Vec::new();
            write_list_header(&mut streamed, payload);
            assert_eq!(streamed.len(), list_header_len(payload));
            streamed.extend(std::iter::repeat_n(0x05u8, n));
            assert_eq!(streamed, via_item);
        }
    }

    #[test]
    fn boundary_55_56_bytes() {
        let s55 = RlpItem::bytes(vec![7u8; 55]);
        assert_eq!(s55.encode()[0], 0x80 + 55);
        rt(&s55);
        let s56 = RlpItem::bytes(vec![7u8; 56]);
        assert_eq!(s56.encode()[0], 0xb8);
        rt(&s56);
    }
}
