//! Byte-level encodings shared by the SIRI index implementations.
//!
//! * [`rlp`] — Recursive Length Prefix, Ethereum's canonical serialization.
//!   Used by the MPT node codec (as in Ethereum, §3.4.1 of the paper) and by
//!   the synthetic Ethereum transaction workload (§5.1.3).
//! * [`nibble`] — nibble paths and the hex-prefix compaction used by MPT
//!   extension/leaf nodes.
//! * [`varint`] — LEB128-style variable-length integers for compact node
//!   encodings.
//! * [`rw`] — a small checked binary reader/writer used by all node codecs.

pub mod nibble;
pub mod rlp;
pub mod rw;
pub mod varint;

pub use nibble::Nibbles;
pub use rlp::{RlpError, RlpItem};
pub use rw::{ByteReader, ByteWriter, CodecError, Scratch};
