//! Checked binary reader/writer used by all node codecs.
//!
//! Every index node in the repository is persisted as a canonical byte
//! encoding (its SHA-256 is the page identifier), so codecs must be
//! deterministic and decoding must be total: a corrupted page yields a
//! [`CodecError`], never a panic. The tamper-evidence tests rely on this.

use std::fmt;

use crate::varint;

/// Error produced when decoding a malformed or truncated node page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended early.
    Truncated,
    /// A tag byte had an unknown value.
    BadTag(u8),
    /// A length or count failed validation.
    BadLength { what: &'static str },
    /// Trailing bytes after a complete node.
    TrailingBytes,
    /// Embedded RLP failed to decode.
    Rlp(crate::rlp::RlpError),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "codec: truncated input"),
            CodecError::BadTag(t) => write!(f, "codec: unknown tag {t:#04x}"),
            CodecError::BadLength { what } => write!(f, "codec: bad length for {what}"),
            CodecError::TrailingBytes => write!(f, "codec: trailing bytes"),
            CodecError::Rlp(e) => write!(f, "codec: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<crate::rlp::RlpError> for CodecError {
    fn from(e: crate::rlp::RlpError) -> Self {
        CodecError::Rlp(e)
    }
}

/// Append-only writer with varint and length-prefixed helpers.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter { buf: Vec::with_capacity(cap) }
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_varint(&mut self, v: u64) {
        varint::write(&mut self.buf, v);
    }

    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Varint length prefix followed by the bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.put_raw(bytes);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far, without consuming the writer — the read
    /// side of buffer reuse: encode, hand the slice to the store, clear,
    /// encode the next node into the same allocation.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Forget the contents, keep the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Grow the backing buffer to at least `cap` total capacity.
    pub fn reserve_total(&mut self, cap: usize) {
        if self.buf.capacity() < cap {
            self.buf.reserve(cap - self.buf.len());
        }
    }

    /// Mutable access to the backing buffer, for codecs that stream into a
    /// plain `Vec<u8>` (the RLP writers) while still reusing this writer's
    /// allocation across nodes.
    pub fn buf_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

/// A reusable encode buffer threaded through an index commit.
///
/// Commit paths serialize one node after another; without reuse every node
/// costs a fresh `Vec` that lives only long enough to be hashed (the page
/// itself is only copied into the store when it is *new* — deduplicated
/// pages never need an owned copy at all). A `Scratch` owns one buffer for
/// the whole commit:
///
/// ```
/// # use siri_encoding::Scratch;
/// let mut scratch = Scratch::new();
/// let w = scratch.start();       // cleared writer, capacity retained
/// w.put_bytes(b"node body");
/// let page: &[u8] = scratch.bytes(); // borrow ends before the next start()
/// # assert_eq!(page.len(), 10);
/// ```
///
/// Ownership rule: the scratch belongs to exactly one commit call chain —
/// it is created per commit (or owned by a single-threaded builder) and
/// never shared across threads or stored in nodes. Callers must copy out
/// of [`Scratch::bytes`] anything that outlives the next [`Scratch::start`].
#[derive(Default)]
pub struct Scratch {
    w: ByteWriter,
}

impl Scratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin encoding a node: returns the writer, cleared but with its
    /// allocation intact.
    pub fn start(&mut self) -> &mut ByteWriter {
        self.w.clear();
        &mut self.w
    }

    /// The encoded bytes of the node most recently built via [`start`].
    ///
    /// [`start`]: Scratch::start
    pub fn bytes(&self) -> &[u8] {
        self.w.as_slice()
    }
}

/// Cursor-style reader; every accessor is checked.
pub struct ByteReader<'a> {
    rest: &'a [u8],
    len0: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(input: &'a [u8]) -> Self {
        ByteReader { rest: input, len0: input.len() }
    }

    /// Bytes consumed so far — lets zero-copy decoders compute sub-slice
    /// ranges into the original buffer.
    pub fn offset(&self) -> usize {
        self.len0 - self.rest.len()
    }

    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        let (&first, rest) = self.rest.split_first().ok_or(CodecError::Truncated)?;
        self.rest = rest;
        Ok(first)
    }

    pub fn get_varint(&mut self) -> Result<u64, CodecError> {
        let (v, rest) = varint::read(self.rest).ok_or(CodecError::Truncated)?;
        self.rest = rest;
        Ok(v)
    }

    pub fn get_raw(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        if self.rest.len() < len {
            return Err(CodecError::Truncated);
        }
        let (head, rest) = self.rest.split_at(len);
        self.rest = rest;
        Ok(head)
    }

    /// Read a varint length prefix, then that many bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_varint()?;
        if len > self.rest.len() as u64 {
            return Err(CodecError::Truncated);
        }
        self.get_raw(len as usize)
    }

    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rest.is_empty()
    }

    /// Assert the reader is exhausted; codecs call this last so trailing
    /// garbage is detected.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(0x42);
        w.put_varint(300);
        w.put_bytes(b"payload");
        w.put_raw(&[1, 2, 3]);
        let buf = w.into_vec();

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 0x42);
        assert_eq!(r.get_varint().unwrap(), 300);
        assert_eq!(r.get_bytes().unwrap(), b"payload");
        assert_eq!(r.get_raw(3).unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut r = ByteReader::new(&[0x05, b'a']); // claims 5 bytes, has 1
        assert_eq!(r.get_bytes(), Err(CodecError::Truncated));
        let mut r = ByteReader::new(&[]);
        assert_eq!(r.get_u8(), Err(CodecError::Truncated));
        assert_eq!(ByteReader::new(&[1]).get_raw(2), Err(CodecError::Truncated));
    }

    #[test]
    fn finish_detects_trailing() {
        let r = ByteReader::new(&[0x00]);
        assert_eq!(r.finish(), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn huge_length_prefix_rejected() {
        // Length prefix far beyond the buffer must not allocate or panic.
        let mut w = ByteWriter::new();
        w.put_varint(u64::MAX);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_bytes(), Err(CodecError::Truncated));
    }
}
