//! LEB128-style unsigned varints for compact node encodings.
//!
//! MBT, POS-Tree and MVMB+-Tree node codecs store entry counts and
//! key/value lengths as varints so that small nodes stay small — node byte
//! size feeds directly into the deduplication-ratio metric (§4.2), so the
//! encodings must not bloat pages with fixed-width lengths.

/// Maximum encoded size of a u64 varint.
pub const MAX_LEN: usize = 10;

/// Append `v` to `out` (7 bits per byte, continuation bit in the MSB).
#[inline]
pub fn write(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a varint from the front of `input`; returns the value and remainder.
/// `None` on truncation or a value that overflows u64.
#[inline]
pub fn read(input: &[u8]) -> Option<(u64, &[u8])> {
    let mut v: u64 = 0;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_LEN {
            return None;
        }
        let payload = (byte & 0x7f) as u64;
        // The 10th byte may only contribute one bit.
        if i == MAX_LEN - 1 && payload > 1 {
            return None;
        }
        v |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Some((v, &input[i + 1..]));
        }
    }
    None
}

/// Encoded length of `v` without writing it.
#[inline]
pub fn len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_edges() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write(&mut buf, v);
            assert_eq!(buf.len(), len(v), "len({v})");
            let (got, rest) = read(&buf).unwrap();
            assert_eq!(got, v);
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn reads_leave_remainder() {
        let mut buf = Vec::new();
        write(&mut buf, 300);
        buf.extend_from_slice(b"tail");
        let (v, rest) = read(&buf).unwrap();
        assert_eq!(v, 300);
        assert_eq!(rest, b"tail");
    }

    #[test]
    fn rejects_truncated() {
        assert!(read(&[0x80]).is_none());
        assert!(read(&[]).is_none());
    }

    #[test]
    fn rejects_overflow() {
        // 11 continuation bytes.
        let buf = [0xffu8; 11];
        assert!(read(&buf).is_none());
        // 10 bytes but the last contributes more than one bit.
        let mut buf = vec![0xff; 9];
        buf.push(0x02);
        assert!(read(&buf).is_none());
    }
}
