//! Nibble paths and hex-prefix compaction for the Merkle Patricia Trie.
//!
//! MPT splits keys into 4-bit *nibbles* (§3.4.1: "the key is split into
//! sequential characters, namely nibbles"). Branch nodes fan out over one
//! nibble; extension and leaf nodes store a run of nibbles compacted back
//! into bytes with Ethereum's *hex-prefix* encoding, whose flag nibble
//! records (a) whether the run has odd length and (b) whether the node is a
//! leaf.

use std::fmt;

/// A sequence of nibbles (each 0..=15), the unit of MPT path navigation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nibbles(Vec<u8>);

impl Nibbles {
    /// Unpack a byte key into nibbles, high nibble first.
    pub fn from_key(key: &[u8]) -> Self {
        let mut out = Vec::with_capacity(key.len() * 2);
        for &b in key {
            out.push(b >> 4);
            out.push(b & 0x0f);
        }
        Nibbles(out)
    }

    /// Build from raw nibble values; panics in debug builds if any is > 15.
    pub fn from_raw(nibbles: Vec<u8>) -> Self {
        debug_assert!(nibbles.iter().all(|&n| n <= 0x0f), "nibble out of range");
        Nibbles(nibbles)
    }

    pub fn empty() -> Self {
        Nibbles(Vec::new())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    pub fn at(&self, i: usize) -> u8 {
        self.0[i]
    }

    /// The sub-path starting at `from`.
    pub fn suffix(&self, from: usize) -> Nibbles {
        Nibbles(self.0[from..].to_vec())
    }

    /// The sub-path `[from, to)`.
    pub fn slice(&self, from: usize, to: usize) -> Nibbles {
        Nibbles(self.0[from..to].to_vec())
    }

    /// Number of leading nibbles shared with `other`.
    pub fn common_prefix_len(&self, other: &Nibbles) -> usize {
        self.0.iter().zip(other.0.iter()).take_while(|(a, b)| a == b).count()
    }

    pub fn starts_with(&self, prefix: &Nibbles) -> bool {
        self.0.len() >= prefix.0.len() && self.0[..prefix.0.len()] == prefix.0[..]
    }

    /// Concatenate `self`, one nibble, and `rest` — used when collapsing a
    /// branch during structural reasoning/tests.
    pub fn join(&self, nib: u8, rest: &Nibbles) -> Nibbles {
        debug_assert!(nib <= 0x0f);
        let mut out = Vec::with_capacity(self.0.len() + 1 + rest.0.len());
        out.extend_from_slice(&self.0);
        out.push(nib);
        out.extend_from_slice(&rest.0);
        Nibbles(out)
    }

    /// Concatenate two paths — the extension/leaf path merge performed when
    /// MPT deletion re-compacts a collapsed chain.
    pub fn concat(&self, rest: &Nibbles) -> Nibbles {
        let mut out = Vec::with_capacity(self.0.len() + rest.0.len());
        out.extend_from_slice(&self.0);
        out.extend_from_slice(&rest.0);
        Nibbles(out)
    }

    /// Repack an even-length nibble path into bytes. Returns `None` for odd
    /// lengths (callers that need a byte key must have consumed whole bytes).
    pub fn to_key(&self) -> Option<Vec<u8>> {
        if !self.0.len().is_multiple_of(2) {
            return None;
        }
        Some(self.0.chunks_exact(2).map(|p| p[0] << 4 | p[1]).collect())
    }

    /// Hex-prefix encode this path (Ethereum yellow paper appendix C).
    ///
    /// Layout: flag nibble `0b00LO` where L=leaf, O=odd, then the nibbles.
    /// Even paths get a zero pad nibble after the flag so the result is
    /// whole bytes.
    pub fn hex_prefix_encode(&self, is_leaf: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.hex_prefix_encoded_len());
        self.hex_prefix_encode_into(is_leaf, &mut out);
        out
    }

    /// Exact byte length of [`Nibbles::hex_prefix_encode`]'s output.
    pub fn hex_prefix_encoded_len(&self) -> usize {
        self.0.len() / 2 + 1
    }

    /// Stream the hex-prefix encoding into `out` — no temporary nibble
    /// buffer, used by allocation-free node codecs.
    pub fn hex_prefix_encode_into(&self, is_leaf: bool, out: &mut Vec<u8>) {
        let odd = self.0.len() % 2 == 1;
        let flag: u8 = match (is_leaf, odd) {
            (false, false) => 0x0,
            (false, true) => 0x1,
            (true, false) => 0x2,
            (true, true) => 0x3,
        };
        let mut rest: &[u8] = &self.0;
        if odd {
            out.push(flag << 4 | rest[0]);
            rest = &rest[1..];
        } else {
            out.push(flag << 4);
        }
        for pair in rest.chunks_exact(2) {
            out.push(pair[0] << 4 | pair[1]);
        }
    }

    /// Decode a hex-prefix encoding; returns the path and the leaf flag.
    pub fn hex_prefix_decode(encoded: &[u8]) -> Option<(Nibbles, bool)> {
        let first = *encoded.first()?;
        let flag = first >> 4;
        if flag > 3 {
            return None;
        }
        let is_leaf = flag & 0x2 != 0;
        let odd = flag & 0x1 != 0;
        let mut nibs = Vec::with_capacity(encoded.len() * 2);
        if odd {
            nibs.push(first & 0x0f);
        } else if first & 0x0f != 0 {
            return None; // pad nibble must be zero
        }
        for &b in &encoded[1..] {
            nibs.push(b >> 4);
            nibs.push(b & 0x0f);
        }
        Some((Nibbles(nibs), is_leaf))
    }
}

impl fmt::Debug for Nibbles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nibbles(")?;
        for n in &self.0 {
            write!(f, "{n:x}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_key_unpacks_high_nibble_first() {
        let n = Nibbles::from_key(&[0xAB, 0xCD]);
        assert_eq!(n.as_slice(), &[0xA, 0xB, 0xC, 0xD]);
    }

    #[test]
    fn to_key_round_trip() {
        let key = b"round-trip-key".to_vec();
        assert_eq!(Nibbles::from_key(&key).to_key().unwrap(), key);
        assert!(Nibbles::from_raw(vec![1, 2, 3]).to_key().is_none());
    }

    #[test]
    fn common_prefix() {
        let a = Nibbles::from_key(b"abcdef");
        let b = Nibbles::from_key(b"abcxyz");
        assert_eq!(a.common_prefix_len(&b), 6); // "abc" = 6 nibbles
        assert!(a.starts_with(&a.slice(0, 6)));
        assert!(!a.starts_with(&b));
    }

    #[test]
    fn hex_prefix_spec_vectors() {
        // Yellow paper appendix C examples.
        // [1,2,3,4,5] extension (odd) -> 0x11 23 45
        let p = Nibbles::from_raw(vec![1, 2, 3, 4, 5]);
        assert_eq!(p.hex_prefix_encode(false), vec![0x11, 0x23, 0x45]);
        // [0,1,2,3,4,5] extension (even) -> 0x00 01 23 45
        let p = Nibbles::from_raw(vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(p.hex_prefix_encode(false), vec![0x00, 0x01, 0x23, 0x45]);
        // [0,f,1,c,b,8] leaf? no — [f,1,c,b,8] odd leaf -> 0x3f 1c b8
        let p = Nibbles::from_raw(vec![0xf, 0x1, 0xc, 0xb, 0x8]);
        assert_eq!(p.hex_prefix_encode(true), vec![0x3f, 0x1c, 0xb8]);
        // [0,f,1,c,b,8] even leaf -> 0x20 0f 1c b8
        let p = Nibbles::from_raw(vec![0x0, 0xf, 0x1, 0xc, 0xb, 0x8]);
        assert_eq!(p.hex_prefix_encode(true), vec![0x20, 0x0f, 0x1c, 0xb8]);
    }

    #[test]
    fn hex_prefix_round_trip() {
        for len in 0..9 {
            for leaf in [false, true] {
                let p = Nibbles::from_raw((0..len).map(|i| (i % 16) as u8).collect());
                let enc = p.hex_prefix_encode(leaf);
                assert_eq!(enc.len(), p.hex_prefix_encoded_len());
                let (dec, dec_leaf) = Nibbles::hex_prefix_decode(&enc).unwrap();
                assert_eq!(dec, p, "len {len} leaf {leaf}");
                assert_eq!(dec_leaf, leaf);
            }
        }
    }

    #[test]
    fn hex_prefix_decode_rejects_garbage() {
        assert!(Nibbles::hex_prefix_decode(&[]).is_none());
        assert!(Nibbles::hex_prefix_decode(&[0x40]).is_none(), "flag > 3");
        assert!(Nibbles::hex_prefix_decode(&[0x05]).is_none(), "nonzero pad");
    }

    #[test]
    fn join_and_suffix() {
        let a = Nibbles::from_raw(vec![1, 2]);
        let b = Nibbles::from_raw(vec![4, 5]);
        assert_eq!(a.join(3, &b).as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(a.join(3, &b).suffix(2).as_slice(), &[3, 4, 5]);
    }
}
