//! `siri-client` — a [`Session`] over the SIRI wire protocol.
//!
//! [`RemoteSession`] connects to a `siri-server` and implements the same
//! [`Session`] trait the in-process engine does, so everything written
//! against `Box<dyn Session>` (the CLI, the behavioral suites) works
//! unchanged across the network boundary. Three things are worth knowing:
//!
//! * **One socket, serialized round trips.** All methods take `&self`; a
//!   mutex serializes frames on the shared connection (the protocol is
//!   strictly request/response, so pipelining would buy latency only at
//!   the cost of a correlation layer). Open more sessions for parallelism
//!   — connections are cheap on the thread-per-connection server.
//! * **Paged cursors.** [`Session::range`] returns a lazy [`EntryCursor`]
//!   that fetches a page of entries per round trip and re-anchors each
//!   request after the last key received — the server keeps no cursor
//!   state, so a scan survives the server dropping and re-admitting the
//!   connection's siblings, and an abandoned cursor costs the server
//!   nothing.
//! * **Anti-entropy sync.** [`RemoteSession::sync_branch`] pulls a
//!   branch's missing pages into a local store via the structural diff
//!   walk in `siri_store::ship` — only pages absent locally cross the
//!   wire, and an interrupted sync resumes from what already landed.
//! * **Proofs verify client-side.** `prove`/`prove_range`/`prove_batch`
//!   fetch the branch digest and re-verify the server's proof locally
//!   against it ([`ClientOptions::scheme`] picks the structure's walk)
//!   before returning; a doctored proof — or a server lying about its own
//!   root — surfaces as [`IndexError::ProofRejected`], and with
//!   [`RemoteSession::verified_get`]/[`verified_scan`](RemoteSession::verified_scan)
//!   no unverified value ever reaches the caller.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::ops::Bound;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::{LockClass, Mutex};
use siri_core::{
    verify_anchored_batch, verify_anchored_membership, verify_anchored_range, BatchVerdict,
    CommitInfo, Entry, EntryCursor, IndexError, Proof, ProofScheme, ProofVerdict, RangeVerdict,
    Result, Session, ShardManifest, WriteBatch,
};
use siri_crypto::Hash;
use siri_server::proto::{
    read_frame, write_frame, Request, Response, WireBound, WireServerStats, MAX_FETCH_HASHES,
    MAX_FRAME_BYTES, WIRE_VERSION,
};
use siri_store::{ship, NodeStore, StoreError, StoreResult};

pub use siri_store::ship::{SyncOptions, SyncReport};

/// Lock class for a client connection (order 8: below every engine lock,
/// so an in-process loopback test holding engine state may still issue
/// wire calls without inverting the hierarchy).
static CONN_CLASS: LockClass = LockClass::new(8, "client.conn");

/// Client tuning.
#[derive(Clone)]
pub struct ClientOptions {
    /// Socket read timeout (an unresponsive server turns into an error,
    /// not a hang).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout.
    pub write_timeout: Option<Duration>,
    /// Entries requested per scan page.
    pub page_size: u32,
    /// Frame payload cap (mirror of the server's).
    pub max_frame_bytes: usize,
    /// The proof-verification walk for the structure the server runs —
    /// every proof the server returns is re-verified locally against the
    /// trusted branch digest with this scheme before values reach the
    /// caller. Pick with [`siri_forkbase::scheme_by_name`] when the
    /// structure is configured at runtime.
    pub scheme: &'static dyn ProofScheme,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            page_size: 256,
            max_frame_bytes: MAX_FRAME_BYTES,
            scheme: &siri_pos_tree::PosProofScheme,
        }
    }
}

impl std::fmt::Debug for ClientOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientOptions")
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("page_size", &self.page_size)
            .field("max_frame_bytes", &self.max_frame_bytes)
            .field("scheme", &self.scheme.structure())
            .finish()
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Set after any transport fault: the request/response rhythm may be
    /// out of step, so every later call fails fast instead of misparsing.
    broken: bool,
    max_frame: usize,
}

impl Conn {
    fn round_trip(&mut self, req: &Request) -> Result<Response> {
        if self.broken {
            return Err(IndexError::Remote("connection is poisoned by an earlier fault".into()));
        }
        let sent = write_frame(&mut self.writer, &req.encode());
        if let Err(e) = sent {
            self.broken = true;
            return Err(IndexError::Store(StoreError::io("wire write", e)));
        }
        let payload = match read_frame(&mut self.reader, self.max_frame) {
            Ok(p) => p,
            Err(e) => {
                self.broken = true;
                return Err(IndexError::Store(StoreError::io("wire read", e)));
            }
        };
        match Response::decode(&payload) {
            Ok(Response::Err(we)) => Err(we.into_index_error()),
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.broken = true;
                Err(IndexError::Codec(e))
            }
        }
    }
}

fn unexpected(what: &'static str) -> IndexError {
    IndexError::Remote(format!("unexpected response to {what}"))
}

/// A connection to a `siri-server`, speaking [`Session`].
pub struct RemoteSession {
    conn: Arc<Mutex<Conn>>,
    opts: ClientOptions,
}

impl RemoteSession {
    /// Connect and handshake with default options.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<RemoteSession> {
        Self::connect_with(addr, ClientOptions::default())
    }

    /// Connect and handshake. Connection and version failures surface as
    /// `io::Error` — after this returns, the session is usable.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        opts: ClientOptions,
    ) -> std::io::Result<RemoteSession> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(opts.read_timeout)?;
        stream.set_write_timeout(opts.write_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut conn = Conn {
            reader,
            writer: BufWriter::new(stream),
            broken: false,
            max_frame: opts.max_frame_bytes,
        };
        match conn.round_trip(&Request::Hello { version: WIRE_VERSION }) {
            Ok(Response::Hello { .. }) => {}
            Ok(_) | Err(_) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "server rejected the protocol handshake",
                ));
            }
        }
        Ok(RemoteSession { conn: Arc::new(Mutex::with_class(conn, &CONN_CLASS)), opts })
    }

    fn request(&self, req: &Request) -> Result<Response> {
        self.conn.lock().round_trip(req)
    }

    /// Server totals and per-connection counters (the `stats` verb).
    pub fn server_stats(&self) -> Result<WireServerStats> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(unexpected("Stats")),
        }
    }

    /// Ask the server to stop (works only when it was started with remote
    /// shutdown enabled).
    pub fn shutdown_server(&self) -> Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            _ => Err(unexpected("Shutdown")),
        }
    }

    /// Fetch a batch of pages by hash (the anti-entropy primitive). At
    /// most [`MAX_FETCH_HASHES`] per call.
    pub fn fetch_pages(&self, hashes: &[Hash]) -> Result<Vec<Option<Bytes>>> {
        match self.request(&Request::Fetch { hashes: hashes.to_vec() })? {
            Response::Pages(pages) => Ok(pages),
            _ => Err(unexpected("Fetch")),
        }
    }

    /// Merkle anti-entropy: make `local` hold every page of `branch`'s
    /// current version, pulling only the pages it is missing.
    ///
    /// `children` decodes one *index* page's child hashes (e.g.
    /// `Node::children_of_page`); shard-manifest pages are handled here,
    /// so a sharded branch syncs transparently. Returns the branch digest
    /// the sync anchored at plus the transfer report. An interrupted sync
    /// (error, or [`SyncOptions::max_pages`] budget) is resumable: call
    /// again and only the unfinished tail transfers.
    pub fn sync_branch<Ch>(
        &self,
        branch: &str,
        local: &dyn NodeStore,
        children: Ch,
        opts: &SyncOptions,
    ) -> Result<(Hash, SyncReport)>
    where
        Ch: Fn(&[u8]) -> Vec<Hash>,
    {
        let root = Session::branch_digest(self, branch)?;
        let batched = SyncOptions { batch: opts.batch.clamp(1, MAX_FETCH_HASHES), ..*opts };
        let mut fetch = |hashes: &[Hash]| -> StoreResult<Vec<Option<Bytes>>> {
            self.fetch_pages(hashes).map_err(|e| match e {
                IndexError::Store(se) => se,
                other => StoreError::Io {
                    op: "sync fetch",
                    kind: std::io::ErrorKind::Other,
                    detail: other.to_string(),
                },
            })
        };
        let manifest_aware = |page: &[u8]| -> Vec<Hash> {
            if ShardManifest::is_manifest(page) {
                match ShardManifest::decode(page) {
                    // Zero sub-roots are empty shards — there is no page
                    // behind them to fetch.
                    Ok(m) => m.roots.into_iter().filter(|r| !r.is_zero()).collect(),
                    Err(_) => Vec::new(),
                }
            } else {
                children(page)
            }
        };
        let report = ship::sync_pull(&mut fetch, local, root, manifest_aware, &batched)
            .map_err(IndexError::Store)?;
        Ok((root, report))
    }

    /// Fetch a proof and pin it to the digest *we* read, not the root the
    /// server claims. An earlier revision returned the server-supplied
    /// root verbatim — a malicious server could pair a self-consistent
    /// proof with its own root and the client would "verify" it against
    /// nothing it trusts. Here the trusted anchor is the digest from a
    /// separate `BranchDigest` round trip; a mismatched claim is rejected
    /// before any verification walk runs. (A branch advancing between the
    /// two round trips also lands here — re-issue the call.)
    fn checked_proof(
        &self,
        branch: &str,
        req: &Request,
        what: &'static str,
    ) -> Result<(Hash, Proof)> {
        let digest = Session::branch_digest(self, branch)?;
        let (root, proof) = match self.request(req)? {
            Response::Proof { root, pages } => (root, Proof::new(pages)),
            _ => return Err(unexpected(what)),
        };
        if root != digest {
            return Err(IndexError::ProofRejected(
                "server-claimed proof root differs from the trusted branch digest",
            ));
        }
        Ok((digest, proof))
    }

    /// A point lookup whose value arrives *inside* a verified proof: the
    /// returned bytes are exactly what the trusted branch digest commits
    /// to, or the call fails — a lying server cannot substitute a value.
    pub fn verified_get(&self, branch: &str, key: &[u8]) -> Result<Option<Bytes>> {
        let (digest, proof) = Session::prove(self, branch, key)?;
        match verify_anchored_membership(self.opts.scheme, digest, key, &proof) {
            ProofVerdict::Present(v) => Ok(Some(v)),
            ProofVerdict::Absent => Ok(None),
            ProofVerdict::Invalid(why) => Err(IndexError::ProofRejected(why)),
        }
    }

    /// A range scan with a completeness guarantee: returns exactly the
    /// entries of `[start, end)` under the trusted digest — nothing
    /// dropped, nothing injected, nothing reordered — or fails.
    pub fn verified_scan(
        &self,
        branch: &str,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
    ) -> Result<Vec<Entry>> {
        let (digest, proof) = Session::prove_range(self, branch, start, end)?;
        match verify_anchored_range(self.opts.scheme, digest, start, end, &proof) {
            RangeVerdict::Complete(entries) => Ok(entries),
            RangeVerdict::Invalid(why) => Err(IndexError::ProofRejected(why)),
        }
    }

    /// Batched verified lookups: one deduplicated proof covers every key;
    /// per-key verdicts come back in input order.
    pub fn verified_get_many(&self, branch: &str, keys: &[Bytes]) -> Result<Vec<Option<Bytes>>> {
        let (digest, proof) = Session::prove_batch(self, branch, keys)?;
        match verify_anchored_batch(self.opts.scheme, digest, keys, &proof) {
            BatchVerdict::Verified(verdicts) => {
                Ok(verdicts.into_iter().map(|v| v.value().cloned()).collect())
            }
            BatchVerdict::Invalid(why) => Err(IndexError::ProofRejected(why)),
        }
    }
}

impl Session for RemoteSession {
    fn commit(&self, branch: &str, batch: WriteBatch) -> Result<CommitInfo> {
        let req = Request::Commit { branch: branch.to_string(), ops: batch.normalize() };
        match self.request(&req)? {
            Response::Committed(info) => Ok(info),
            _ => Err(unexpected("Commit")),
        }
    }

    fn get(&self, branch: &str, key: &[u8]) -> Result<Option<Bytes>> {
        let req = Request::Get { branch: branch.to_string(), key: Bytes::copy_from_slice(key) };
        match self.request(&req)? {
            Response::Value(v) => Ok(v),
            _ => Err(unexpected("Get")),
        }
    }

    fn range(&self, branch: &str, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Result<EntryCursor> {
        Ok(EntryCursor::new(RemoteCursor {
            conn: self.conn.clone(),
            branch: branch.to_string(),
            start: WireBound::from_bound(start),
            end: WireBound::from_bound(end),
            after: None,
            page_size: self.opts.page_size.max(1),
            buf: VecDeque::new(),
            state: CursorState::Fresh,
        }))
    }

    fn fork(&self, from: &str, to: &str) -> Result<()> {
        let req = Request::Fork { from: from.to_string(), to: to.to_string() };
        match self.request(&req)? {
            Response::Ok => Ok(()),
            _ => Err(unexpected("Fork")),
        }
    }

    fn delete_branch(&self, branch: &str) -> Result<()> {
        match self.request(&Request::DeleteBranch { branch: branch.to_string() })? {
            Response::Ok => Ok(()),
            _ => Err(unexpected("DeleteBranch")),
        }
    }

    fn branches(&self) -> Result<Vec<String>> {
        match self.request(&Request::Branches)? {
            Response::Branches(names) => Ok(names),
            _ => Err(unexpected("Branches")),
        }
    }

    fn branch_digest(&self, branch: &str) -> Result<Hash> {
        match self.request(&Request::BranchDigest { branch: branch.to_string() })? {
            Response::Digest(h) => Ok(h),
            _ => Err(unexpected("BranchDigest")),
        }
    }

    fn prove(&self, branch: &str, key: &[u8]) -> Result<(Hash, Proof)> {
        let req = Request::Prove { branch: branch.to_string(), key: Bytes::copy_from_slice(key) };
        let (digest, proof) = self.checked_proof(branch, &req, "Prove")?;
        match verify_anchored_membership(self.opts.scheme, digest, key, &proof) {
            ProofVerdict::Invalid(why) => Err(IndexError::ProofRejected(why)),
            _ => Ok((digest, proof)),
        }
    }

    fn prove_range(
        &self,
        branch: &str,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
    ) -> Result<(Hash, Proof)> {
        let req = Request::ProveRange {
            branch: branch.to_string(),
            start: WireBound::from_bound(start),
            end: WireBound::from_bound(end),
        };
        let (digest, proof) = self.checked_proof(branch, &req, "ProveRange")?;
        match verify_anchored_range(self.opts.scheme, digest, start, end, &proof) {
            RangeVerdict::Invalid(why) => Err(IndexError::ProofRejected(why)),
            RangeVerdict::Complete(_) => Ok((digest, proof)),
        }
    }

    fn prove_batch(&self, branch: &str, keys: &[Bytes]) -> Result<(Hash, Proof)> {
        let req = Request::ProveBatch { branch: branch.to_string(), keys: keys.to_vec() };
        let (digest, proof) = self.checked_proof(branch, &req, "ProveBatch")?;
        match verify_anchored_batch(self.opts.scheme, digest, keys, &proof) {
            BatchVerdict::Invalid(why) => Err(IndexError::ProofRejected(why)),
            BatchVerdict::Verified(_) => Ok((digest, proof)),
        }
    }
}

enum CursorState {
    /// No page requested yet.
    Fresh,
    /// More pages may remain after `after`.
    More,
    /// Server said the range is exhausted (or a fault ended the stream).
    Done,
}

/// The lazy paging state machine behind a remote [`EntryCursor`]. Each
/// refill is one `Range` round trip anchored after the last delivered key;
/// entries buffer locally so iteration between refills is allocation-only.
struct RemoteCursor {
    conn: Arc<Mutex<Conn>>,
    branch: String,
    start: WireBound,
    end: WireBound,
    after: Option<Bytes>,
    page_size: u32,
    buf: VecDeque<Entry>,
    state: CursorState,
}

impl RemoteCursor {
    fn refill(&mut self) -> Result<()> {
        let req = Request::Range {
            branch: self.branch.clone(),
            start: self.start.clone(),
            end: self.end.clone(),
            after: self.after.clone(),
            limit: self.page_size,
        };
        match self.conn.lock().round_trip(&req)? {
            Response::Page { entries, done } => {
                if done {
                    self.state = CursorState::Done;
                } else {
                    self.state = CursorState::More;
                }
                if let Some(last) = entries.last() {
                    self.after = Some(last.key.clone());
                }
                self.buf.extend(entries);
                Ok(())
            }
            _ => Err(unexpected("Range")),
        }
    }
}

impl Iterator for RemoteCursor {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(e) = self.buf.pop_front() {
                return Some(Ok(e));
            }
            match self.state {
                CursorState::Done => return None,
                CursorState::Fresh | CursorState::More => {
                    if let Err(e) = self.refill() {
                        // Surface the fault once, then end the stream.
                        self.state = CursorState::Done;
                        return Some(Err(e));
                    }
                    if self.buf.is_empty() {
                        // An empty `done: false` page would loop forever;
                        // treat it as exhaustion either way.
                        return None;
                    }
                }
            }
        }
    }
}
