//! Workspace walking and file classification.
//!
//! Rules apply per *kind* of file: library crates carry the panic and
//! fallible-store discipline; benches, tests, the CLI and vendored shims do
//! not. Classification is by path, mirroring the workspace layout in
//! `Cargo.toml` — a new crate lands in [`classify`] when it is added there.

use std::path::{Path, PathBuf};

/// What kind of source file is this, for rule applicability?
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileKind {
    /// A library crate under `crates/` (carries all disciplines). The name
    /// is the crate directory, e.g. `store`, `forkbase`.
    Library(String),
    /// Integration tests, fixtures under `tests/`.
    TestCode,
    /// The `siri-bench` crate: measurement code, panicking is fine.
    Bench,
    /// The root binary / CLI (`src/`): top-level error reporting may panic.
    Cli,
    /// Vendored shims under `vendor/`: exempt from project rules (but not
    /// from the SAFETY rule — `unsafe` always needs a comment).
    Vendor,
    /// The linter itself.
    Tool,
}

impl FileKind {
    /// Rule 1 (`no-panic`) applies to library crates only.
    pub fn panic_disciplined(&self) -> bool {
        matches!(self, FileKind::Library(_))
    }

    /// Rule 2 (`fallible-store`) applies to index/engine crates — the ones
    /// that sit *above* the store API and must propagate store faults.
    pub fn store_disciplined(&self) -> bool {
        matches!(
            self,
            FileKind::Library(name)
                if matches!(
                    name.as_str(),
                    "core" | "store" | "forkbase" | "mbt" | "mpt" | "mvmb" | "pos-tree"
                )
        )
    }

    /// Rule 4 (`determinism`) applies to digest/encode/chunking crates.
    pub fn determinism_disciplined(&self, path: &Path) -> bool {
        match self {
            FileKind::Library(name) if matches!(name.as_str(), "crypto" | "encoding") => true,
            FileKind::Library(_) => {
                // Chunking/encoding-path modules inside index crates.
                let file = path.file_name().and_then(|f| f.to_str()).unwrap_or("");
                matches!(
                    file,
                    "node.rs"
                        | "builder.rs"
                        | "params.rs"
                        | "update.rs"
                        | "topology.rs"
                        | "entry_codec.rs"
                        | "rolling.rs"
                        | "fasthash.rs"
                )
            }
            _ => false,
        }
    }
}

/// Classify a workspace-relative path.
pub fn classify(rel: &Path) -> FileKind {
    let s = rel.to_string_lossy().replace('\\', "/");
    if s.starts_with("vendor/") {
        return FileKind::Vendor;
    }
    if s.starts_with("crates/lint/") {
        return FileKind::Tool;
    }
    if s.starts_with("crates/bench/") {
        return FileKind::Bench;
    }
    if let Some(rest) = s.strip_prefix("crates/") {
        if let Some((name, tail)) = rest.split_once('/') {
            // A crate's own tests/ and benches/ directories are test code.
            if tail.starts_with("tests/") || tail.starts_with("benches/") {
                return FileKind::TestCode;
            }
            return FileKind::Library(name.to_string());
        }
    }
    if s.starts_with("tests/") {
        return FileKind::TestCode;
    }
    // Root src/: the `siri` CLI + integration glue.
    FileKind::Cli
}

/// Recursively collect `.rs` files under `root`, returning workspace-relative
/// paths. Skips VCS/build directories and the linter's own bad-on-purpose
/// fixtures (they are linted explicitly by the fixture tests, never by the
/// workspace walk).
pub fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let ty = entry.file_type().map_err(|e| format!("{}: {e}", path.display()))?;
            if ty.is_dir() {
                if matches!(name.as_ref(), ".git" | "target" | "node_modules")
                    || name == "lint_fixtures"
                {
                    continue;
                }
                stack.push(path);
            } else if ty.is_file() && name.ends_with(".rs") {
                let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Locate the workspace root: walk up from `start` until a directory holding
/// both `Cargo.toml` and `crates/` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(
            classify(Path::new("crates/store/src/lib.rs")),
            FileKind::Library("store".into())
        );
        assert_eq!(classify(Path::new("crates/store/tests/t.rs")), FileKind::TestCode);
        assert_eq!(classify(Path::new("crates/bench/src/lib.rs")), FileKind::Bench);
        assert_eq!(classify(Path::new("crates/lint/src/rules.rs")), FileKind::Tool);
        assert_eq!(classify(Path::new("vendor/parking_lot/src/lib.rs")), FileKind::Vendor);
        assert_eq!(classify(Path::new("tests/engine.rs")), FileKind::TestCode);
        assert_eq!(classify(Path::new("src/main.rs")), FileKind::Cli);
    }

    #[test]
    fn disciplines() {
        let store = classify(Path::new("crates/store/src/lib.rs"));
        assert!(store.panic_disciplined());
        assert!(store.store_disciplined());
        let crypto = classify(Path::new("crates/crypto/src/sha256.rs"));
        assert!(crypto.panic_disciplined());
        assert!(!crypto.store_disciplined());
        assert!(crypto.determinism_disciplined(Path::new("crates/crypto/src/sha256.rs")));
        let mbt_node = classify(Path::new("crates/mbt/src/node.rs"));
        assert!(mbt_node.determinism_disciplined(Path::new("crates/mbt/src/node.rs")));
        let mbt_proof = classify(Path::new("crates/mbt/src/proof.rs"));
        assert!(!mbt_proof.determinism_disciplined(Path::new("crates/mbt/src/proof.rs")));
    }
}
