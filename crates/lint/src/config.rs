//! `lint.toml` allowlist: a minimal, dependency-free TOML-subset parser.
//!
//! The config is a sequence of `[[allow]]` tables with string values:
//!
//! ```toml
//! [[allow]]
//! rule = "no-panic"                 # required: rule id, or "*"
//! path = "crates/store/src/lib.rs"  # required: workspace-relative path
//!                                   # (suffix match), or a directory prefix
//! contains = "expect(\"store"      # optional: the flagged line must
//!                                   # contain this substring
//! reason = "documented sugar"       # required: why this is allowed
//! ```
//!
//! Only the shapes above are understood — `key = "string"` pairs inside
//! `[[allow]]` tables, comments, and blank lines. Anything else is a config
//! error; failing loudly beats silently ignoring an allowlist entry.

use std::path::Path;

#[derive(Debug, Clone, Default)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub contains: Option<String>,
    pub reason: String,
    /// Line in lint.toml where this entry starts (for unused-entry reports).
    pub line: u32,
}

#[derive(Debug, Default)]
pub struct Config {
    pub allows: Vec<AllowEntry>,
}

impl Config {
    /// Parse `lint.toml` text. Returns an error message with a line number
    /// on any construct outside the supported subset.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut current: Option<AllowEntry> = None;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(entry) = current.take() {
                    cfg.push_validated(entry)?;
                }
                current = Some(AllowEntry { line: lineno, ..AllowEntry::default() });
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "lint.toml:{lineno}: unsupported table `{line}` (only [[allow]] is understood)"
                ));
            }
            let Some((key, value)) = parse_kv(line) else {
                return Err(format!(
                    "lint.toml:{lineno}: expected `key = \"value\"`, got `{line}`"
                ));
            };
            let Some(entry) = current.as_mut() else {
                return Err(format!("lint.toml:{lineno}: `{key}` outside an [[allow]] table"));
            };
            match key {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "contains" => entry.contains = Some(value),
                "reason" => entry.reason = value,
                other => {
                    return Err(format!("lint.toml:{lineno}: unknown key `{other}`"));
                }
            }
        }
        if let Some(entry) = current.take() {
            cfg.push_validated(entry)?;
        }
        Ok(cfg)
    }

    fn push_validated(&mut self, entry: AllowEntry) -> Result<(), String> {
        let at = entry.line;
        if entry.rule.is_empty() {
            return Err(format!("lint.toml:{at}: [[allow]] entry is missing `rule`"));
        }
        if entry.path.is_empty() {
            return Err(format!("lint.toml:{at}: [[allow]] entry is missing `path`"));
        }
        if entry.reason.is_empty() {
            return Err(format!(
                "lint.toml:{at}: [[allow]] entry is missing `reason` — every suppression \
                 must say why"
            ));
        }
        self.allows.push(entry);
        Ok(())
    }

    /// Does some entry suppress a finding of `rule` at `path` whose source
    /// line text is `line_text`? Returns the matching entry's index.
    pub fn allows_match(&self, rule: &str, path: &Path, line_text: &str) -> Option<usize> {
        let path_str = path.to_string_lossy().replace('\\', "/");
        self.allows.iter().position(|a| {
            (a.rule == "*" || a.rule == rule)
                && path_matches(&a.path, &path_str)
                && a.contains.as_ref().is_none_or(|c| line_text.contains(c))
        })
    }
}

/// An allow `path` matches if it equals the reported path, is a suffix of it
/// (so entries work regardless of whether the walk was rooted at the repo or
/// a subdirectory), or is a directory prefix of it.
fn path_matches(pattern: &str, path: &str) -> bool {
    if path == pattern || path.ends_with(&format!("/{pattern}")) {
        return true;
    }
    let dir = format!("{}/", pattern.trim_end_matches('/'));
    path.starts_with(&dir) || path.contains(&format!("/{dir}"))
}

/// Strip a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Parse `key = "value"` (value must be a double-quoted string with `\"`
/// and `\\` escapes).
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    let rest = rest.trim();
    if !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') || key.is_empty() {
        return None;
    }
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    let mut value = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => value.push('"'),
                '\\' => value.push('\\'),
                'n' => value.push('\n'),
                't' => value.push('\t'),
                _ => return None,
            }
        } else if c == '"' {
            // An unescaped interior quote means `rest` wasn't one string.
            return None;
        } else {
            value.push(c);
        }
    }
    Some((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn parses_entries_and_matches() {
        let cfg = Config::parse(
            r#"
            # store sugar is documented
            [[allow]]
            rule = "no-panic"
            path = "crates/store/src/lib.rs"
            contains = "expect(\"store"
            reason = "documented panicking sugar"

            [[allow]]
            rule = "*"
            path = "crates/crypto/src/sha256.rs"
            reason = "env-validation panic at startup"
            "#,
        )
        .unwrap();
        assert_eq!(cfg.allows.len(), 2);
        assert!(cfg
            .allows_match(
                "no-panic",
                Path::new("crates/store/src/lib.rs"),
                r#"res.expect("store write failed")"#,
            )
            .is_some());
        // Wrong line text → no match.
        assert!(cfg
            .allows_match("no-panic", Path::new("crates/store/src/lib.rs"), "x.unwrap()")
            .is_none());
        // Wildcard rule matches any rule for that file.
        assert!(cfg
            .allows_match("determinism", Path::new("crates/crypto/src/sha256.rs"), "anything")
            .is_some());
    }

    #[test]
    fn suffix_and_prefix_paths() {
        let cfg =
            Config::parse("[[allow]]\nrule = \"x\"\npath = \"crates/store\"\nreason = \"r\"\n")
                .unwrap();
        assert!(cfg.allows_match("x", Path::new("crates/store/src/gc.rs"), "").is_some());
        assert!(cfg.allows_match("x", Path::new("crates/forkbase/src/lib.rs"), "").is_none());
    }

    #[test]
    fn missing_reason_is_an_error() {
        let err = Config::parse("[[allow]]\nrule = \"x\"\npath = \"p\"\n").unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_key_is_an_error() {
        let err =
            Config::parse("[[allow]]\nrule = \"x\"\npath = \"p\"\nreson = \"typo\"\n").unwrap_err();
        assert!(err.contains("reson"), "{err}");
    }
}
