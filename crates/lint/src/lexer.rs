//! A lightweight Rust lexer — just enough token structure for the rule
//! engine, none of the grammar.
//!
//! The rules need four things a plain regex cannot give them reliably:
//!
//! 1. code vs. **string/char literals** (an `unwrap()` inside a string is
//!    not a call);
//! 2. code vs. **comments** (including nested block comments), with doc
//!    comments distinguished so the SAFETY rule can accept `/// # Safety`
//!    sections;
//! 3. **identifier boundaries** (`unwrap_or_else` must not match `unwrap`);
//! 4. **line numbers** for every token, so diagnostics point at real
//!    locations.
//!
//! Raw strings (`r#"…"#`), byte strings, raw identifiers (`r#type`) and the
//! lifetime-vs-char-literal ambiguity (`'a` vs `'a'`) are handled; full
//! expression grammar is deliberately not — the rules are token-pattern
//! matchers over this stream.

/// One code token. Comments are collected separately in [`Lexed::comments`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    /// Token text. For literals this is the raw source slice (possibly
    /// multi-line); rules only ever inspect identifier text.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// One punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// String/char/byte/numeric literal.
    Lit,
    /// A lifetime such as `'a` (kept so char-literal handling stays exact).
    Lifetime,
}

/// One comment, with its line span and whether it is a doc comment
/// (`///`, `//!`, `/** … */`, `/*! … */`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    pub end_line: u32,
    pub doc: bool,
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    pub fn ident_at(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i) {
            Some(t) if t.kind == TokKind::Ident => Some(&t.text),
            _ => None,
        }
    }

    pub fn punct_at(&self, i: usize) -> Option<char> {
        match self.tokens.get(i) {
            Some(Token { kind: TokKind::Punct(c), .. }) => Some(*c),
            _ => None,
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.bytes.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `source` into tokens and comments. The lexer never fails: malformed
/// input (e.g. an unterminated string) is consumed to end of file, which is
/// the right degradation for a linter.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor { bytes: source.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                let start = cur.pos;
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                let text = source[start..cur.pos].to_string();
                let doc = text.starts_with("///") || text.starts_with("//!");
                out.comments.push(Comment { line, end_line: line, doc, text });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                let start = cur.pos;
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                let text = source[start..cur.pos].to_string();
                let doc = text.starts_with("/**") || text.starts_with("/*!");
                out.comments.push(Comment { line, end_line: cur.line, doc, text });
            }
            b'"' => {
                let start = cur.pos;
                lex_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::Lit,
                    text: source[start..cur.pos].to_string(),
                    line,
                    col,
                });
            }
            b'\'' => {
                // Lifetime or char literal. `'\…'` and `'x'` are chars;
                // `'ident` (no closing quote right after) is a lifetime.
                let start = cur.pos;
                let next = cur.peek(1);
                let is_char = match next {
                    Some(b'\\') => true,
                    Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                        // 'a' is a char, 'a is a lifetime, 'ab' is invalid
                        // (lexed as lifetime + stray quote; harmless here).
                        cur.peek(2) == Some(b'\'')
                    }
                    Some(_) => true, // '(' etc. — a char literal like '('
                    None => false,
                };
                if is_char {
                    cur.bump(); // opening quote
                    if cur.peek(0) == Some(b'\\') {
                        cur.bump();
                        cur.bump(); // escaped char (enough for \', \\, \n, \x..)
                        while cur.peek(0).is_some_and(|c| c != b'\'') {
                            cur.bump();
                        }
                    } else {
                        cur.bump();
                    }
                    cur.bump(); // closing quote
                    out.tokens.push(Token {
                        kind: TokKind::Lit,
                        text: source[start..cur.pos].to_string(),
                        line,
                        col,
                    });
                } else {
                    cur.bump();
                    while cur.peek(0).is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: source[start..cur.pos].to_string(),
                        line,
                        col,
                    });
                }
            }
            b'r' | b'b' if starts_raw_or_byte_string(&cur) => {
                let start = cur.pos;
                // Skip the prefix letters (r, b, br).
                while cur.peek(0).is_some_and(|c| c == b'r' || c == b'b') {
                    cur.bump();
                }
                let mut hashes = 0usize;
                while cur.peek(0) == Some(b'#') {
                    hashes += 1;
                    cur.bump();
                }
                if cur.peek(0) == Some(b'"') {
                    cur.bump();
                    // Raw string: ends at `"` followed by `hashes` hashes.
                    'outer: while let Some(c) = cur.bump() {
                        if c == b'"' {
                            for k in 0..hashes {
                                if cur.peek(k) != Some(b'#') {
                                    continue 'outer;
                                }
                            }
                            for _ in 0..hashes {
                                cur.bump();
                            }
                            break;
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lit,
                        text: source[start..cur.pos].to_string(),
                        line,
                        col,
                    });
                } else {
                    // `r#ident` raw identifier (hashes == 1) or a plain
                    // ident starting with r/b that we mis-sniffed; consume
                    // as identifier either way.
                    while cur.peek(0).is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Ident,
                        text: source[start..cur.pos].trim_start_matches("r#").to_string(),
                        line,
                        col,
                    });
                }
            }
            c if is_ident_start(c) => {
                let start = cur.pos;
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: source[start..cur.pos].to_string(),
                    line,
                    col,
                });
            }
            c if c.is_ascii_digit() => {
                let start = cur.pos;
                // Numbers (including 0x…, 1_000u64, 1.5e3). A trailing
                // ident-ish suffix is folded into the literal.
                while let Some(c) = cur.peek(0) {
                    let take = c.is_ascii_alphanumeric()
                        || c == b'_'
                        // A dot continues the number only before a digit, so
                        // `1..n` ranges and `1.method()` calls stay intact.
                        || (c == b'.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit()));
                    if !take {
                        break;
                    }
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Lit,
                    text: source[start..cur.pos].to_string(),
                    line,
                    col,
                });
            }
            c => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokKind::Punct(c as char),
                    text: (c as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Is the `r`/`b` at the cursor the start of a raw/byte string (or raw
/// identifier) rather than a plain identifier like `result`?
fn starts_raw_or_byte_string(cur: &Cursor<'_>) -> bool {
    let b0 = cur.peek(0);
    let b1 = cur.peek(1);
    let b2 = cur.peek(2);
    match (b0, b1) {
        (Some(b'r'), Some(b'"')) | (Some(b'b'), Some(b'"')) => true,
        (Some(b'r'), Some(b'#')) => true, // raw string r#"…" or raw ident r#type
        (Some(b'b'), Some(b'r')) if b2 == Some(b'"') || b2 == Some(b'#') => true,
        // Byte chars b'x' fall through: `b` lexes as an identifier and the
        // quote as a char literal, which is fine for rule matching.
        _ => false,
    }
}

fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Mark every token that lives inside test-only code: a `#[cfg(test)]`
/// (or `#[cfg(any(test, …))]`) module, or a `#[test]` / `#[cfg(test)]`
/// function. Returns one flag per token.
pub fn test_regions(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if lexed.punct_at(i) == Some('#') && lexed.punct_at(i + 1) == Some('[') {
            // Collect the attribute token range.
            let attr_start = i + 2;
            let mut depth = 1usize;
            let mut j = attr_start;
            while j < toks.len() && depth > 0 {
                match lexed.punct_at(j) {
                    Some('[') => depth += 1,
                    Some(']') => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let attr_end = j; // one past the closing ']'
            let mut has_cfg = false;
            let mut has_test = false;
            let mut bare_test = false;
            let attr_len = attr_end.saturating_sub(1).saturating_sub(attr_start);
            for k in attr_start..attr_end {
                match lexed.ident_at(k) {
                    Some("cfg") => has_cfg = true,
                    Some("test") => {
                        has_test = true;
                        if attr_len == 1 {
                            bare_test = true;
                        }
                    }
                    _ => {}
                }
            }
            if (has_cfg && has_test) || bare_test {
                // Skip any further attributes / doc comments to the item.
                let mut k = attr_end;
                while lexed.punct_at(k) == Some('#') && lexed.punct_at(k + 1) == Some('[') {
                    let mut d = 1usize;
                    let mut m = k + 2;
                    while m < toks.len() && d > 0 {
                        match lexed.punct_at(m) {
                            Some('[') => d += 1,
                            Some(']') => d -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    k = m;
                }
                // Find the item's body braces (skip `pub`, `mod name`,
                // `fn name<…>(…) -> …`).
                if let Some(body_start) = find_body_open(lexed, k) {
                    let body_end = match_brace(lexed, body_start);
                    for flag in in_test.iter_mut().take(body_end + 1).skip(i) {
                        *flag = true;
                    }
                    i = body_end + 1;
                    continue;
                }
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    in_test
}

/// From item start `k`, find the index of the `{` opening its body —
/// skipping parameter lists, generics and return types. Returns `None` for
/// braceless items (`mod foo;`).
pub(crate) fn find_body_open(lexed: &Lexed, k: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut j = k;
    while j < lexed.tokens.len() {
        match lexed.punct_at(j) {
            Some('(') => paren += 1,
            Some(')') => paren -= 1,
            Some('[') => bracket += 1,
            Some(']') => bracket -= 1,
            Some('{') if paren == 0 && bracket == 0 => return Some(j),
            Some(';') if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub(crate) fn match_brace(lexed: &Lexed, open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < lexed.tokens.len() {
        match lexed.punct_at(j) {
            Some('{') => depth += 1,
            Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    lexed.tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r##"
            // unwrap() in a comment
            /* panic! in /* a nested */ block */
            let s = "unwrap() in a string";
            let r = r#"panic! in a raw "string""#;
            s.len();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap" || i == "panic"));
        assert!(ids.iter().any(|i| i == "len"));
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x.trim() }";
        let ids = idents(src);
        assert!(ids.iter().any(|i| i == "trim"));
        let lx = lex(src);
        assert!(lx.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
    }

    #[test]
    fn char_literals_with_quotes() {
        let src = "let a = '\\''; let b = 'x'; b.is_alphabetic();";
        let ids = idents(src);
        assert!(ids.iter().any(|i| i == "is_alphabetic"));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let src = "a\nb\n  c";
        let lx = lex(src);
        assert_eq!(lx.tokens[0].line, 1);
        assert_eq!(lx.tokens[1].line, 2);
        assert_eq!(lx.tokens[2].line, 3);
        assert_eq!(lx.tokens[2].col, 3);
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = r#"
            fn lib_code() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { y.unwrap(); }
            }
        "#;
        let lx = lex(src);
        let flags = test_regions(&lx);
        let unwraps: Vec<bool> = lx
            .tokens
            .iter()
            .zip(&flags)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, f)| *f)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn test_fn_attribute_is_marked() {
        let src = r#"
            #[test]
            fn check() { z.unwrap(); }
            fn real() { w.unwrap(); }
        "#;
        let lx = lex(src);
        let flags = test_regions(&lx);
        let unwraps: Vec<bool> = lx
            .tokens
            .iter()
            .zip(&flags)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, f)| *f)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn cfg_any_test_is_marked() {
        let src = "#[cfg(any(test, feature = \"x\"))] mod m { fn f() { a.unwrap(); } }";
        let lx = lex(src);
        let flags = test_regions(&lx);
        let idx = lx.tokens.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(flags[idx]);
    }
}
