//! `siri-lint` — workspace invariant linter.
//!
//! A hand-rolled, offline static-analysis pass (no external parser crates)
//! that walks the workspace and enforces the project invariants from
//! DESIGN.md §9 as CI-gated diagnostics:
//!
//! * `no-panic` — no `unwrap()`/`expect()`/`panic!` in library crate
//!   non-test code;
//! * `fallible-store` — index/engine crates call `try_put`/`try_get`, never
//!   the panicking sugar;
//! * `safety-comment` — every `unsafe` carries a `// SAFETY:` comment;
//! * `determinism` — no wall clock or OS randomness in digest/encode/chunk
//!   paths;
//! * `lock-order` — never acquire the branch-map lock while a slot-head or
//!   client-view guard is held.
//!
//! Findings can be suppressed by `lint.toml` allowlist entries, each of
//! which must carry a reason. The static pass is paired with a runtime
//! lock-order tracker in the vendored `parking_lot` shim (enabled with
//! `SIRI_LOCK_ORDER=1` in debug builds).

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod workspace;

use std::path::{Path, PathBuf};

pub use config::Config;
pub use diag::Diagnostic;
pub use rules::{Profile, RULES};
pub use workspace::FileKind;

/// Result of linting a file set against a config.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived the allowlist, ready to print.
    pub diags: Vec<Diagnostic>,
    /// Findings suppressed by a lint.toml entry.
    pub suppressed: usize,
    /// Allowlist entries that suppressed nothing (likely stale).
    pub unused_allows: Vec<config::AllowEntry>,
    /// Number of files linted.
    pub files: usize,
}

/// Lint one source text with an explicit profile, no allowlist. The building
/// block for both the workspace walk and the fixture tests.
pub fn lint_source(path: &Path, source: &str, profile: Profile) -> Vec<Diagnostic> {
    rules::run_rules(path, source, profile)
}

/// Lint the workspace rooted at `root` against `config`.
pub fn lint_workspace(root: &Path, config: &Config) -> Result<Report, String> {
    let files = workspace::collect_rs_files(root)?;
    let mut used = vec![false; config.allows.len()];
    let mut report = Report::default();

    for rel in &files {
        let abs = root.join(rel);
        let source =
            std::fs::read_to_string(&abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        report.files += 1;
        let kind = workspace::classify(rel);
        let profile = Profile::for_kind(&kind, rel);
        for d in rules::run_rules(rel, &source, profile) {
            let line_text = source.lines().nth(d.line as usize - 1).unwrap_or("");
            match config.allows_match(d.rule, &d.path, line_text) {
                Some(idx) => {
                    used[idx] = true;
                    report.suppressed += 1;
                }
                None => report.diags.push(d),
            }
        }
    }

    report.unused_allows =
        config.allows.iter().zip(&used).filter(|(_, u)| !**u).map(|(a, _)| a.clone()).collect();
    Ok(report)
}

/// Lint explicitly named files with the strict profile (every rule on) and
/// no allowlist — the mode the fixture tests and ad-hoc CLI invocations use.
pub fn lint_files_strict(paths: &[PathBuf]) -> Result<Vec<Diagnostic>, String> {
    let mut diags = Vec::new();
    for path in paths {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        diags.extend(rules::run_rules(path, &source, Profile::strict()));
    }
    Ok(diags)
}

/// Load `lint.toml` from the workspace root, if present.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    if !path.is_file() {
        return Ok(Config::default());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read lint.toml: {e}"))?;
    Config::parse(&text)
}
