//! `siri-lint` CLI.
//!
//! ```text
//! siri-lint --workspace            lint the whole workspace against lint.toml
//! siri-lint FILE...                lint named files, strict profile, no allowlist
//! siri-lint --list-rules           print the rule catalog
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/config/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use siri_lint::{lint_files_strict, lint_workspace, load_config, workspace, RULES};

fn main() -> ExitCode {
    match run() {
        Ok(findings) => {
            if findings == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("siri-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<usize, String> {
    let mut args = std::env::args().skip(1);
    let mut mode_workspace = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => mode_workspace = true,
            "--list-rules" => list_rules = true,
            "--root" => {
                let v = args.next().ok_or("--root needs a path")?;
                root = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                print!(
                    "siri-lint: workspace invariant linter\n\n\
                     usage:\n  siri-lint --workspace [--root DIR]\n  siri-lint FILE...\n  \
                     siri-lint --list-rules\n\n\
                     exit codes: 0 clean, 1 findings, 2 error\n"
                );
                return Ok(0);
            }
            f if !f.starts_with('-') => files.push(PathBuf::from(f)),
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }

    if list_rules {
        for (id, summary) in RULES {
            println!("{id:16} {summary}");
        }
        return Ok(0);
    }

    if mode_workspace {
        let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
        let root = match root {
            Some(r) => r,
            None => workspace::find_workspace_root(&cwd)
                .ok_or("could not find the workspace root (Cargo.toml + crates/)")?,
        };
        let config = load_config(&root)?;
        let report = lint_workspace(&root, &config)?;
        for d in &report.diags {
            println!("{d}");
        }
        for a in &report.unused_allows {
            eprintln!(
                "siri-lint: warning: lint.toml:{} allow entry (rule `{}`, path `{}`) \
                 matched nothing — stale?",
                a.line, a.rule, a.path
            );
        }
        println!(
            "siri-lint: {} file(s), {} finding(s), {} suppressed by lint.toml",
            report.files,
            report.diags.len(),
            report.suppressed
        );
        return Ok(report.diags.len());
    }

    if files.is_empty() {
        return Err("nothing to do: pass --workspace or file paths (try --help)".into());
    }
    let diags = lint_files_strict(&files)?;
    for d in &diags {
        println!("{d}");
    }
    println!("siri-lint: {} file(s), {} finding(s) [strict profile]", files.len(), diags.len());
    Ok(diags.len())
}
