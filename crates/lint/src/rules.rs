//! The rule catalog. Each rule is a token-pattern matcher over
//! [`crate::lexer::Lexed`]; DESIGN.md §9 documents the invariant behind
//! each one and the procedure for adding more.

use std::path::Path;

use crate::diag::Diagnostic;
use crate::lexer::{lex, test_regions, Lexed, TokKind};
use crate::workspace::FileKind;

/// Which rule families apply to a file. `safety-comment` and `lock-order`
/// always run; the other three are discipline-scoped by crate kind.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    pub no_panic: bool,
    pub fallible_store: bool,
    pub determinism: bool,
}

impl Profile {
    /// The profile the workspace walk applies, derived from the file's kind.
    pub fn for_kind(kind: &FileKind, path: &Path) -> Profile {
        Profile {
            no_panic: kind.panic_disciplined(),
            fallible_store: kind.store_disciplined(),
            determinism: kind.determinism_disciplined(path),
        }
    }

    /// Everything on — used for explicitly named files (CLI args) and the
    /// checked-in bad fixtures, where the point is to exercise every rule.
    pub fn strict() -> Profile {
        Profile { no_panic: true, fallible_store: true, determinism: true }
    }
}

/// Rule ids with one-line summaries, for `--list-rules`.
pub const RULES: &[(&str, &str)] = &[
    ("no-panic", "no unwrap()/expect()/panic! in library crate non-test code"),
    ("fallible-store", "index/engine code must use try_put/try_get, not panicking sugar"),
    ("safety-comment", "every `unsafe` needs a // SAFETY: (or /// # Safety) comment"),
    ("determinism", "no Instant::now/SystemTime::now/thread_rng in digest/encode/chunk paths"),
    ("lock-order", "never acquire the branch-map lock while a slot/view lock is held"),
];

/// Lex `source` and run every applicable rule.
pub fn run_rules(path: &Path, source: &str, profile: Profile) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let in_test = test_regions(&lexed);
    let mut diags = Vec::new();
    if profile.no_panic {
        no_panic(path, &lexed, &in_test, &mut diags);
    }
    if profile.fallible_store {
        fallible_store(path, &lexed, &in_test, &mut diags);
    }
    if profile.determinism {
        determinism(path, &lexed, &in_test, &mut diags);
    }
    safety_comment(path, &lexed, &mut diags);
    lock_order(path, &lexed, &in_test, &mut diags);
    diags.sort_by_key(|d| (d.line, d.col));
    diags
}

fn diag(
    path: &Path,
    lexed: &Lexed,
    tok: usize,
    rule: &'static str,
    message: String,
    help: String,
) -> Diagnostic {
    let t = &lexed.tokens[tok];
    Diagnostic { path: path.to_path_buf(), line: t.line, col: t.col, rule, message, help }
}

/// Rule 1: panicking constructs in library non-test code. `assert!`,
/// `debug_assert!` and `unreachable!` are deliberate exceptions — they state
/// invariants, not error handling.
fn no_panic(path: &Path, lexed: &Lexed, in_test: &[bool], out: &mut Vec<Diagnostic>) {
    for (i, &in_t) in in_test.iter().enumerate() {
        if in_t {
            continue;
        }
        let Some(name) = lexed.ident_at(i) else { continue };
        match name {
            "unwrap" | "expect"
                if lexed.punct_at(i.wrapping_sub(1)) == Some('.')
                    && lexed.punct_at(i + 1) == Some('(') =>
            {
                out.push(diag(
                    path,
                    lexed,
                    i,
                    "no-panic",
                    format!("`.{name}()` in library non-test code"),
                    "propagate with `?` (or handle the None/Err arm); if the panic is an \
                     intentional API contract, allowlist it in lint.toml with a reason"
                        .into(),
                ));
            }
            "panic" | "todo" | "unimplemented" if lexed.punct_at(i + 1) == Some('!') => {
                out.push(diag(
                    path,
                    lexed,
                    i,
                    "no-panic",
                    format!("`{name}!` in library non-test code"),
                    "return an error variant instead; use `unreachable!`/`assert!` only for \
                     invariants that cannot be reached from caller input"
                        .into(),
                ));
            }
            _ => {}
        }
    }
}

/// Rule 2: calls to the panicking store sugar (`put`/`get`/`put_raw`/
/// `put_many`) on a store-shaped receiver in index/engine code. The sugar
/// exists for tests, benches and the CLI; engine paths must surface
/// `StoreError` through `try_*`.
fn fallible_store(path: &Path, lexed: &Lexed, in_test: &[bool], out: &mut Vec<Diagnostic>) {
    for (i, &in_t) in in_test.iter().enumerate() {
        if in_t {
            continue;
        }
        let Some(method) = lexed.ident_at(i) else { continue };
        if !matches!(method, "put" | "get" | "put_raw" | "put_many") {
            continue;
        }
        if lexed.punct_at(i.wrapping_sub(1)) != Some('.') || lexed.punct_at(i + 1) != Some('(') {
            continue;
        }
        let Some(recv) = (i >= 2).then(|| lexed.ident_at(i - 2)).flatten() else { continue };
        let store_shaped =
            matches!(recv, "store" | "server" | "client_store") || recv.ends_with("_store");
        if store_shaped {
            out.push(diag(
                path,
                lexed,
                i,
                "fallible-store",
                format!("panicking store sugar `{recv}.{method}(..)` in engine code"),
                format!("call `{recv}.try_{method}(..)?` and propagate the StoreError"),
            ));
        }
    }
}

/// Rule 3: every `unsafe` keyword needs a `// SAFETY:` comment (or a
/// `/// # Safety` doc section for `unsafe fn`) within 8 lines above it, on
/// the same line, or on the line right below (first line of the block).
fn safety_comment(path: &Path, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    // Coalesce adjacent comment lines into blocks, so a multi-line
    // `/// # Safety` section (one Comment per `///` line) is judged by the
    // distance from its *last* line to the `unsafe` token.
    let mut blocks: Vec<(u32, u32, bool)> = Vec::new(); // (line, end_line, has_marker)
    for c in &lexed.comments {
        let marker = c.text.contains("SAFETY:") || c.text.contains("# Safety");
        match blocks.last_mut() {
            Some((_, end, has)) if c.line <= *end + 1 => {
                *end = (*end).max(c.end_line);
                *has |= marker;
            }
            _ => blocks.push((c.line, c.end_line, marker)),
        }
    }
    for i in 0..lexed.tokens.len() {
        if lexed.ident_at(i) != Some("unsafe") {
            continue;
        }
        let line = lexed.tokens[i].line;
        let covered = blocks.iter().any(|(start, end, has)| {
            *has && *start <= line + 1 && end + 8 >= line && *end <= line + 1
        });
        if !covered {
            let what = match lexed.ident_at(i + 1) {
                Some("fn") => "unsafe fn",
                Some("impl") => "unsafe impl",
                _ => "unsafe block",
            };
            out.push(diag(
                path,
                lexed,
                i,
                "safety-comment",
                format!("{what} without a SAFETY comment"),
                "add `// SAFETY: <why the preconditions hold here>` directly above (for \
                 `unsafe fn`, a `/// # Safety` doc section also counts)"
                    .into(),
            ));
        }
    }
}

/// Rule 4: wall-clock and OS randomness in digest/encode/chunking paths.
/// Roots must be a pure function of the data — see DESIGN.md §8.
fn determinism(path: &Path, lexed: &Lexed, in_test: &[bool], out: &mut Vec<Diagnostic>) {
    for (i, &in_t) in in_test.iter().enumerate() {
        if in_t {
            continue;
        }
        let Some(name) = lexed.ident_at(i) else { continue };
        let hit = match name {
            "Instant" | "SystemTime" => {
                lexed.punct_at(i + 1) == Some(':')
                    && lexed.punct_at(i + 2) == Some(':')
                    && lexed.ident_at(i + 3) == Some("now")
            }
            "thread_rng" => true,
            _ => false,
        };
        if hit {
            out.push(diag(
                path,
                lexed,
                i,
                "determinism",
                format!("`{name}` in a determinism-disciplined module"),
                "digest/encode/chunking output must depend only on the input bytes; take \
                 timestamps/seeds as parameters at the boundary instead"
                    .into(),
            ));
        }
    }
}

/// What lock a `.read()/.write()/.lock()` receiver chain refers to, as a
/// rank in the documented acquisition order (lower rank first).
fn lock_rank(chain: &[&str]) -> Option<(u8, &'static str)> {
    if chain.iter().any(|c| *c == "branches" || *c == "branch_map") {
        Some((0, "branch-map"))
    } else if chain.contains(&"head") {
        Some((1, "slot-head"))
    } else if chain.contains(&"view") {
        Some((2, "client-view"))
    } else {
        None
    }
}

/// Rule 5: static nested-lock scan. Tracks let-bound guards per brace scope
/// and statement temporaries, and flags any acquisition whose rank is lower
/// than a lock already held (e.g. the branch-map lock while a slot-head or
/// client-view guard is live). Heuristic by design: receiver chains are
/// matched by field name, and guards are assumed to live to the end of
/// their statement (temporaries) or scope (let-bound), which over- rather
/// than under-approximates if-let scrutinee extension.
fn lock_order(path: &Path, lexed: &Lexed, in_test: &[bool], out: &mut Vec<Diagnostic>) {
    #[derive(Clone)]
    struct Held {
        rank: u8,
        what: &'static str,
        name: Option<String>,
    }
    let mut scopes: Vec<Vec<Held>> = vec![Vec::new()];
    let mut stmt_temps: Vec<Held> = Vec::new();

    for i in 0..lexed.tokens.len() {
        match lexed.tokens[i].kind {
            TokKind::Punct('{') => {
                // If-let/match scrutinee temporaries outlive the `{`; plain
                // `if` temporaries do not, but carrying them into the scope
                // only over-approximates what is held.
                let mut scope = Vec::new();
                scope.append(&mut stmt_temps);
                scopes.push(scope);
            }
            TokKind::Punct('}') => {
                // Tail-expression temporaries (no trailing `;`) die with
                // their scope.
                stmt_temps.clear();
                scopes.pop();
                if scopes.is_empty() {
                    scopes.push(Vec::new());
                }
            }
            TokKind::Punct(';') => stmt_temps.clear(),
            TokKind::Ident => {
                // Explicit `drop(guard)` releases a let-bound guard early.
                if lexed.ident_at(i) == Some("drop")
                    && lexed.punct_at(i + 1) == Some('(')
                    && lexed.punct_at(i + 3) == Some(')')
                {
                    if let Some(dropped) = lexed.ident_at(i + 2) {
                        for scope in &mut scopes {
                            scope.retain(|h| h.name.as_deref() != Some(dropped));
                        }
                    }
                    continue;
                }
                if !matches!(lexed.ident_at(i), Some("read") | Some("write") | Some("lock")) {
                    continue;
                }
                if lexed.punct_at(i.wrapping_sub(1)) != Some('.')
                    || lexed.punct_at(i + 1) != Some('(')
                    || lexed.punct_at(i + 2) != Some(')')
                {
                    continue;
                }
                // Walk the receiver chain backwards: `slot.head.read()`
                // yields ["head", "slot"].
                let mut chain: Vec<&str> = Vec::new();
                let mut j = i - 1; // the '.' before the method
                while j >= 1 {
                    let Some(id) = lexed.ident_at(j - 1) else { break };
                    chain.push(id);
                    if j >= 3 && lexed.punct_at(j - 2) == Some('.') {
                        j -= 2;
                    } else {
                        break;
                    }
                }
                let Some((rank, what)) = lock_rank(&chain) else { continue };
                if in_test.get(i).copied() != Some(true) {
                    let held_higher =
                        scopes.iter().flatten().chain(stmt_temps.iter()).find(|h| h.rank > rank);
                    if let Some(h) = held_higher {
                        out.push(diag(
                            path,
                            lexed,
                            i,
                            "lock-order",
                            format!("{what} lock acquired while a {} guard is held", h.what),
                            "the documented order is branch map -> slot head -> client \
                             view (DESIGN.md \u{a7}9); release the inner guard first or \
                             restructure to acquire in order"
                                .into(),
                        ));
                    }
                }
                // Record the new guard: `let g = x.read();` binds it for the
                // scope; anything else is a statement temporary.
                let bound_name = if lexed.punct_at(i + 3) == Some(';') {
                    statement_let_binding(lexed, j.saturating_sub(1))
                } else {
                    None
                };
                let held = Held { rank, what, name: bound_name.clone() };
                if bound_name.is_some() {
                    if let Some(scope) = scopes.last_mut() {
                        scope.push(held);
                    }
                } else {
                    stmt_temps.push(held);
                }
            }
            _ => {}
        }
    }
}

/// If the statement containing token `at` starts with `let [mut] name`,
/// return the bound name.
fn statement_let_binding(lexed: &Lexed, at: usize) -> Option<String> {
    let mut k = at;
    loop {
        if matches!(lexed.punct_at(k), Some(';') | Some('{') | Some('}')) {
            k += 1;
            break;
        }
        if k == 0 {
            break;
        }
        k -= 1;
    }
    if lexed.ident_at(k) != Some("let") {
        return None;
    }
    let mut n = k + 1;
    if lexed.ident_at(n) == Some("mut") {
        n += 1;
    }
    lexed.ident_at(n).map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(src: &str) -> Vec<Diagnostic> {
        run_rules(Path::new("lib.rs"), src, Profile::strict())
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn no_panic_flags_and_spares() {
        let d = run("fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert_eq!(rules_of(&d), ["no-panic"]);
        let d = run("fn f() { panic!(\"boom\"); }");
        assert_eq!(rules_of(&d), ["no-panic"]);
        // Test code, assert!, unreachable! and unwrap_or_else are all fine.
        let d = run("#[cfg(test)] mod t { fn f(x: Option<u8>) { x.unwrap(); panic!(); } }\n\
             fn g(x: Option<u8>) -> u8 { assert!(true); x.unwrap_or_else(|| 0) }\n\
             fn h() { unreachable!() }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn fallible_store_flags_sugar_only() {
        let d = run("fn f() { store.put(&page); }");
        assert_eq!(rules_of(&d), ["fallible-store"]);
        let d = run("fn f() { client_store.get(&h); }");
        assert_eq!(rules_of(&d), ["fallible-store"]);
        let d = run("fn f() -> Result<(), E> { store.try_put(&page)?; map.get(&k); Ok(()) }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn safety_comment_required_and_accepted() {
        let d = run("fn f() { unsafe { core::hint::unreachable_unchecked() } }");
        assert_eq!(rules_of(&d), ["safety-comment"]);
        let d = run("fn f() {\n    // SAFETY: caller checked the discriminant above.\n    \
             unsafe { core::hint::unreachable_unchecked() }\n}");
        assert!(d.is_empty(), "{d:?}");
        // Doc-style # Safety section on an unsafe fn.
        let d = run("/// Does a thing.\n///\n/// # Safety\n/// `ptr` must be valid.\n\
             pub unsafe fn g(ptr: *const u8) {}");
        assert!(d.is_empty(), "{d:?}");
        // A SAFETY comment 20 lines away does not count.
        let far = format!("// SAFETY: stale.\n{}fn f() {{ unsafe {{ g() }} }}", "\n".repeat(20));
        assert_eq!(rules_of(&run(&far)), ["safety-comment"]);
    }

    #[test]
    fn determinism_flags_clocks_and_rng() {
        let d = run("fn f() { let t = Instant::now(); }");
        assert_eq!(rules_of(&d), ["determinism"]);
        let d = run("fn f() { let t = std::time::SystemTime::now(); }");
        assert_eq!(rules_of(&d), ["determinism"]);
        let d = run("fn f() { let mut rng = thread_rng(); }");
        assert_eq!(rules_of(&d), ["determinism"]);
        // A type mention without ::now is fine.
        let d = run("fn f(deadline: Instant) {}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn lock_order_flags_inversion() {
        // Slot-head guard held, then branch map: inversion.
        let d = run("fn f(&self) {\n    let g = self.slot.head.read();\n    \
             let b = self.branches.write();\n}");
        assert_eq!(rules_of(&d), ["lock-order"]);
        // View guard held, then branch map: inversion.
        let d = run("fn f(&self) {\n    let v = slot.view.lock();\n    self.branches.read();\n}");
        assert_eq!(rules_of(&d), ["lock-order"]);
    }

    #[test]
    fn lock_order_accepts_documented_order_and_drops() {
        // branch map -> head -> view is the documented order.
        let d = run(
            "fn f(&self) {\n    let m = self.branches.read();\n    let h = slot.head.read();\n    \
             let v = slot.view.lock();\n}",
        );
        assert!(d.is_empty(), "{d:?}");
        // Temporaries die at the end of their statement.
        let d = run("fn f(&self) {\n    let base = slot.head.read().clone();\n    \
             let m = self.branches.read();\n}");
        assert!(d.is_empty(), "{d:?}");
        // An explicit drop() releases the guard.
        let d = run("fn f(&self) {\n    let h = slot.head.read();\n    drop(h);\n    \
             let m = self.branches.read();\n}");
        assert!(d.is_empty(), "{d:?}");
        // Scope exit releases the guard.
        let d = run("fn f(&self) {\n    { let h = slot.head.read(); }\n    \
             let m = self.branches.read();\n}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn lock_order_tail_expression_temp_dies_with_its_fn() {
        // The head guard in f's tail expression must not leak into g.
        let d = run("fn f(&self) -> V { self.slot.head.read().get(k) }\n\
             fn g(&self) { let m = self.branches.write(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn lock_order_ignores_unrelated_locks() {
        let d = run("fn f(&self) {\n    let s = self.shards[i].lock();\n    \
             let m = self.branches.read();\n}");
        assert!(d.is_empty(), "{d:?}");
    }
}
