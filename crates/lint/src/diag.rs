//! Diagnostic type and rendering.

use std::fmt;
use std::path::PathBuf;

/// One finding: a rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path as reported (workspace-relative when walking the workspace).
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Stable rule id, e.g. `no-panic`.
    pub rule: &'static str,
    /// What is wrong.
    pub message: String,
    /// How to fix it (a `--fix`-style suggestion; always cheap advice,
    /// never an automated rewrite).
    pub help: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.col,
            self.rule,
            self.message
        )?;
        write!(f, "    help: {}", self.help)
    }
}
