//! # siri — Indexing Structures for Immutable Data
//!
//! A faithful Rust reproduction of *"Analysis of Indexing Structures for
//! Immutable Data"* (SIGMOD 2020): the three SIRI structures — Merkle
//! Patricia Trie, Merkle Bucket Tree, POS-Tree — and the MVMB+-Tree
//! baseline, unified behind one [`SiriIndex`] interface over a shared
//! content-addressed page store, plus the paper's workloads, metrics and
//! benchmark harness.
//!
//! ## Quickstart
//!
//! ```
//! use std::ops::Bound;
//! use siri::{MemStore, PosParams, PosTree, SiriIndex, WriteBatch};
//!
//! let store = MemStore::new_shared();
//! let mut index = PosTree::new(store, PosParams::default());
//!
//! // Every commit produces a new immutable version; clones are snapshots.
//! index.insert(b"alice", bytes::Bytes::from_static(b"100")).unwrap();
//! let v1 = index.clone();
//!
//! // The atomic write unit is a batch of puts and deletes.
//! let mut batch = WriteBatch::new();
//! batch.put(&b"bob"[..], &b"75"[..]).delete(&b"alice"[..]);
//! index.commit(batch).unwrap();
//!
//! assert_eq!(v1.get(b"alice").unwrap().unwrap().as_ref(), b"100");
//! assert_eq!(index.get(b"alice").unwrap(), None);
//!
//! // Reads stream through a lazy cursor; scans never materialize.
//! let window: Vec<_> = index
//!     .range(Bound::Included(&b"a"[..]), Bound::Unbounded)
//!     .map(|e| e.unwrap().key)
//!     .collect();
//! assert_eq!(window, vec![bytes::Bytes::from_static(b"bob")]);
//!
//! // The root digest is tamper-evident; proofs verify against it alone.
//! let proof = index.prove(b"bob").unwrap();
//! let verdict = PosTree::verify_proof(index.root(), b"bob", &proof);
//! assert_eq!(verdict.value().unwrap().as_ref(), b"75");
//! ```
//!
//! See `examples/` for full scenarios (blockchain ledger, collaborative
//! analytics, wiki versioning) and DESIGN.md / EXPERIMENTS.md for the
//! paper-reproduction map.

pub use siri_core::{
    apply_ops, chain_cursors, cost_model, diff_by_scan, diff_sorted_entries, entry_codec, merge,
    merge_with_base, metrics, prefix_successor, siri_properties, BatchOp, Bytes, CacheStats,
    CommitInfo, DiffEntry, DiffSide, Entry, EntryCursor, Hash, IndexError, LookupTrace, MemStore,
    MergeOutcome, MergeStrategy, NodeStore, Op, PageSet, Proof, ProofVerdict, Reclaim, Result,
    ShardCommit, ShardManifest, ShardRouter, SharedStore, SiriIndex, StoreError, StoreResult,
    StoreStats, StructureReport, StructureStats, VersionStore, VersionTag, WriteBatch,
    MANIFEST_MAGIC,
};

pub use siri_crypto as crypto;
pub use siri_encoding as encoding;
pub use siri_forkbase::{
    max_commit_attempts, EngineStats, Forkbase, IndexFactory, MbtFactory, MptFactory, MvmbFactory,
    NomsEngine, PosFactory, ShardStats, ShardingPolicy, DEFAULT_FETCH_COST_NANOS,
    MAX_COMMIT_ATTEMPTS,
};
pub use siri_mbt::{MerkleBucketTree, DEFAULT_BUCKETS, DEFAULT_FANOUT};
pub use siri_mpt::MerklePatriciaTrie;
pub use siri_mvmb::{MvmbParams, MvmbTree};
pub use siri_pos_tree::{
    self as pos_tree, ChunkerKind, InternalChunking, PosParams, PosTree, SplitPolicy,
};
pub use siri_store::{
    gc, ship, CachingStore, FileStore, FileStoreOptions, FsyncPolicy, DEFAULT_SEGMENT_BYTES,
};
pub use siri_workloads as workloads;

/// The store the `SIRI_STORE` environment variable selects: `"file"` opens
/// a fresh [`FileStore`] under the system temp directory (fsync disabled —
/// these are tests, not databases), anything else is a [`MemStore`].
///
/// This is how CI runs the integration suite against the durable backend
/// without forking the tests: suites whose store choice is incidental call
/// this instead of [`MemStore::new_shared`].
pub fn env_store() -> SharedStore {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    match std::env::var("SIRI_STORE").as_deref() {
        Ok("file") => {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join("siri-env-stores")
                .join(format!("{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let opts =
                FileStoreOptions { fsync: FsyncPolicy::Never, ..FileStoreOptions::default() };
            let (fs, _) = FileStore::open_with(&dir, opts)
                .expect("SIRI_STORE=file: cannot create temp store");
            std::sync::Arc::new(fs)
        }
        _ => MemStore::new_shared(),
    }
}
