//! # siri — Indexing Structures for Immutable Data
//!
//! A faithful Rust reproduction of *"Analysis of Indexing Structures for
//! Immutable Data"* (SIGMOD 2020): the three SIRI structures — Merkle
//! Patricia Trie, Merkle Bucket Tree, POS-Tree — and the MVMB+-Tree
//! baseline, unified behind one [`SiriIndex`] interface over a shared
//! content-addressed page store, plus the paper's workloads, metrics and
//! benchmark harness.
//!
//! ## Quickstart
//!
//! ```
//! use std::ops::Bound;
//! use siri::{MemStore, PosParams, PosTree, SiriIndex, WriteBatch};
//!
//! let store = MemStore::new_shared();
//! let mut index = PosTree::new(store, PosParams::default());
//!
//! // Every commit produces a new immutable version; clones are snapshots.
//! index.insert(b"alice", bytes::Bytes::from_static(b"100")).unwrap();
//! let v1 = index.clone();
//!
//! // The atomic write unit is a batch of puts and deletes.
//! let mut batch = WriteBatch::new();
//! batch.put(&b"bob"[..], &b"75"[..]).delete(&b"alice"[..]);
//! index.commit(batch).unwrap();
//!
//! assert_eq!(v1.get(b"alice").unwrap().unwrap().as_ref(), b"100");
//! assert_eq!(index.get(b"alice").unwrap(), None);
//!
//! // Reads stream through a lazy cursor; scans never materialize.
//! let window: Vec<_> = index
//!     .range(Bound::Included(&b"a"[..]), Bound::Unbounded)
//!     .map(|e| e.unwrap().key)
//!     .collect();
//! assert_eq!(window, vec![bytes::Bytes::from_static(b"bob")]);
//!
//! // The root digest is tamper-evident; proofs verify against it alone.
//! let proof = index.prove(b"bob").unwrap();
//! let verdict = PosTree::verify_proof(index.root(), b"bob", &proof);
//! assert_eq!(verdict.value().unwrap().as_ref(), b"75");
//! ```
//!
//! See `examples/` for full scenarios (blockchain ledger, collaborative
//! analytics, wiki versioning) and DESIGN.md / EXPERIMENTS.md for the
//! paper-reproduction map.

pub use siri_core::{
    apply_ops, bounds_contain, chain_cursors, child_overlaps, cost_model, diff_by_scan,
    diff_sorted_entries, entry_codec, merge, merge_with_base, metrics, prefix_successor,
    siri_properties, verify_anchored_batch, verify_anchored_membership, verify_anchored_range,
    BatchOp, BatchVerdict, Bytes, CacheStats, CommitInfo, DiffEntry, DiffSide, Entry, EntryCursor,
    Hash, IndexError, LookupTrace, MemStore, MergeOutcome, MergeStrategy, NodeStore, Op, PagePool,
    PageSet, Proof, ProofScheme, ProofVerdict, RangeVerdict, Reclaim, Result, Session, ShardCommit,
    ShardManifest, ShardRouter, SharedStore, SiriIndex, StoreError, StoreResult, StoreStats,
    StructureReport, StructureStats, VersionStore, VersionTag, WriteBatch, MANIFEST_MAGIC,
    MAX_PROOF_PAGES,
};

pub use siri_client::{ClientOptions, RemoteSession, SyncOptions, SyncReport};
pub use siri_crypto as crypto;
pub use siri_encoding as encoding;
pub use siri_forkbase::{
    max_commit_attempts, scheme_by_name, EngineStats, Forkbase, IndexFactory, MbtFactory,
    MptFactory, MvmbFactory, NomsEngine, PosFactory, ShardStats, ShardingPolicy,
    DEFAULT_FETCH_COST_NANOS, MAX_COMMIT_ATTEMPTS,
};
pub use siri_mbt::{MbtProofScheme, MerkleBucketTree, DEFAULT_BUCKETS, DEFAULT_FANOUT};
pub use siri_mpt::{MerklePatriciaTrie, MptProofScheme};
pub use siri_mvmb::{MvmbParams, MvmbProofScheme, MvmbTree};
pub use siri_pos_tree::{
    self as pos_tree, ChunkerKind, InternalChunking, PosParams, PosProofScheme, PosTree,
    SplitPolicy,
};
pub use siri_server::{self as server, proto, serve, serve_addr, ServerHandle, ServerOptions};
pub use siri_store::{
    gc, ship, CachingStore, FileStore, FileStoreOptions, FsyncPolicy, DEFAULT_SEGMENT_BYTES,
};
pub use siri_workloads as workloads;

/// The store the `SIRI_STORE` environment variable selects: `"file"` opens
/// a fresh [`FileStore`] under the system temp directory (fsync disabled —
/// these are tests, not databases), anything else is a [`MemStore`].
///
/// This is how CI runs the integration suite against the durable backend
/// without forking the tests: suites whose store choice is incidental call
/// this instead of [`MemStore::new_shared`].
pub fn env_store() -> SharedStore {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    match std::env::var("SIRI_STORE").as_deref() {
        Ok("file") => {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join("siri-env-stores")
                .join(format!("{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let opts =
                FileStoreOptions { fsync: FsyncPolicy::Never, ..FileStoreOptions::default() };
            let (fs, _) = FileStore::open_with(&dir, opts)
                .expect("SIRI_STORE=file: cannot create temp store");
            std::sync::Arc::new(fs)
        }
        _ => MemStore::new_shared(),
    }
}

/// A [`Session`] plus whatever infrastructure keeps it alive: nothing for
/// the in-process engine, a loopback server for the remote case. Deref to
/// `dyn Session` — callers never learn which they got.
pub struct SessionHandle {
    session: Box<dyn Session>,
    _server: Option<ServerHandle<PosFactory>>,
}

impl std::ops::Deref for SessionHandle {
    type Target = dyn Session;
    fn deref(&self) -> &Self::Target {
        self.session.as_ref()
    }
}

/// The session the `SIRI_REMOTE` environment variable selects: `"1"`
/// spins up a loopback `siri-server` over [`env_store`] and connects a
/// [`RemoteSession`] to it, anything else is the in-process engine over
/// the same store.
///
/// This is how CI runs the behavioral suites across the network boundary
/// without forking the tests: every commit, scan page and proof crosses
/// the wire, and the assertions stay byte-for-byte the ones the
/// in-process engine passes.
pub fn env_session() -> SessionHandle {
    let engine =
        std::sync::Arc::new(Forkbase::with_store(PosFactory(PosParams::default()), env_store(), 0));
    if std::env::var("SIRI_REMOTE").as_deref() == Ok("1") {
        let listener = std::net::TcpListener::bind("127.0.0.1:0")
            .expect("SIRI_REMOTE=1: cannot bind a loopback listener");
        let server = serve(engine, listener, ServerOptions::default(), None)
            .expect("SIRI_REMOTE=1: cannot start the loopback server");
        let session = RemoteSession::connect(server.addr())
            .expect("SIRI_REMOTE=1: cannot connect to the loopback server");
        SessionHandle { session: Box::new(session), _server: Some(server) }
    } else {
        SessionHandle { session: Box::new(ArcSession(engine)), _server: None }
    }
}

/// `Arc<Forkbase>` forwarding shim so [`SessionHandle`] can own the engine
/// it serves.
struct ArcSession(std::sync::Arc<Forkbase<PosFactory>>);

impl Session for ArcSession {
    fn commit(&self, branch: &str, batch: WriteBatch) -> Result<CommitInfo> {
        Session::commit(self.0.as_ref(), branch, batch)
    }
    fn get(&self, branch: &str, key: &[u8]) -> Result<Option<Bytes>> {
        Session::get(self.0.as_ref(), branch, key)
    }
    fn range(
        &self,
        branch: &str,
        start: std::ops::Bound<&[u8]>,
        end: std::ops::Bound<&[u8]>,
    ) -> Result<EntryCursor> {
        Session::range(self.0.as_ref(), branch, start, end)
    }
    fn scan_prefix(&self, branch: &str, prefix: &[u8]) -> Result<EntryCursor> {
        Session::scan_prefix(self.0.as_ref(), branch, prefix)
    }
    fn fork(&self, from: &str, to: &str) -> Result<()> {
        Session::fork(self.0.as_ref(), from, to)
    }
    fn delete_branch(&self, branch: &str) -> Result<()> {
        Session::delete_branch(self.0.as_ref(), branch)
    }
    fn branches(&self) -> Result<Vec<String>> {
        Session::branches(self.0.as_ref())
    }
    fn branch_digest(&self, branch: &str) -> Result<Hash> {
        Session::branch_digest(self.0.as_ref(), branch)
    }
    fn prove(&self, branch: &str, key: &[u8]) -> Result<(Hash, Proof)> {
        Session::prove(self.0.as_ref(), branch, key)
    }
    fn prove_range(
        &self,
        branch: &str,
        start: std::ops::Bound<&[u8]>,
        end: std::ops::Bound<&[u8]>,
    ) -> Result<(Hash, Proof)> {
        Session::prove_range(self.0.as_ref(), branch, start, end)
    }
    fn prove_batch(&self, branch: &str, keys: &[Bytes]) -> Result<(Hash, Proof)> {
        Session::prove_batch(self.0.as_ref(), branch, keys)
    }
}
