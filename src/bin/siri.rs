//! `siri` — a small CLI over a persistent POS-Tree store.
//!
//! A versioned, tamper-evident key-value database in one file:
//!
//! ```text
//! siri --db ./data.siri put <key> <value>     # new version per write
//! siri --db ./data.siri get <key> [--root H]  # read head or any version
//! siri --db ./data.siri scan [prefix]
//! siri --db ./data.siri log                   # version history (digests)
//! siri --db ./data.siri prove <key>           # emit a proof (hex pages)
//! siri --db ./data.siri diff <rootA> <rootB>
//! siri --db ./data.siri stats
//! ```
//!
//! The head pointer and history live in a sidecar file `<db>.head` (the
//! page log itself is append-only and content-addressed, so the sidecar is
//! the only mutable state).

use std::sync::Arc;

use siri::{Hash, NodeStore, PosParams, PosTree, SharedStore, SiriIndex};
use siri_store::FileStore;

fn usage() -> ! {
    eprintln!(
        "usage: siri --db <path> <command>\n\
         commands:\n\
         \x20 put <key> <value>      write one record (creates a version)\n\
         \x20 del <key>              delete one record (creates a version)\n\
         \x20 get <key> [--root H]   read from head or a specific version\n\
         \x20 scan [prefix]          list records (optionally by prefix)\n\
         \x20 log                    list version digests, newest first\n\
         \x20 prove <key>            print a Merkle proof for the key\n\
         \x20 verify <key> <root> <proof-hex...>  check a proof offline\n\
         \x20 diff <rootA> <rootB>   compare two versions\n\
         \x20 stats                  storage statistics"
    );
    std::process::exit(2);
}

fn load_history(path: &str) -> Vec<Hash> {
    std::fs::read_to_string(path).unwrap_or_default().lines().filter_map(Hash::from_hex).collect()
}

fn append_history(path: &str, root: Hash) {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().append(true).create(true).open(path).unwrap();
    writeln!(f, "{root}").unwrap();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut db = String::from("./siri.db");
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--db" {
            i += 1;
            db = args.get(i).cloned().unwrap_or_else(|| usage());
        } else {
            rest.push(args[i].clone());
        }
        i += 1;
    }
    if rest.is_empty() {
        usage();
    }

    let head_file = format!("{db}.head");
    let (fs, _) = FileStore::open(&db).expect("cannot open database file");
    let store: SharedStore = Arc::new(fs);
    let history = load_history(&head_file);
    let head_root = history.last().copied().unwrap_or(Hash::ZERO);
    let params = PosParams::default();
    let head = PosTree::open(store.clone(), params, head_root);

    match rest[0].as_str() {
        "put" => {
            let (key, value) = match (rest.get(1), rest.get(2)) {
                (Some(k), Some(v)) => (k.clone(), v.clone()),
                _ => usage(),
            };
            let mut next = head.clone();
            next.insert(key.as_bytes(), bytes::Bytes::from(value.into_bytes())).unwrap();
            append_history(&head_file, next.root());
            println!("{}", next.root());
        }
        "del" => {
            let key = rest.get(1).unwrap_or_else(|| usage());
            let mut next = head.clone();
            next.delete(key.as_bytes()).unwrap();
            append_history(&head_file, next.root());
            println!("{}", next.root());
        }
        "get" => {
            let key = rest.get(1).unwrap_or_else(|| usage());
            let view = match rest.iter().position(|a| a == "--root") {
                Some(p) => {
                    let h =
                        rest.get(p + 1).and_then(|s| Hash::from_hex(s)).unwrap_or_else(|| usage());
                    PosTree::open(store.clone(), params, h)
                }
                None => head,
            };
            match view.get(key.as_bytes()).unwrap() {
                Some(v) => println!("{}", String::from_utf8_lossy(&v)),
                None => {
                    eprintln!("(not found)");
                    std::process::exit(1);
                }
            }
        }
        "scan" => {
            // Stream through the unified cursor — constant memory, even
            // for a full-database scan.
            let cursor = match rest.get(1) {
                Some(prefix) => head.scan_prefix(prefix.as_bytes()),
                None => head.range(std::ops::Bound::Unbounded, std::ops::Bound::Unbounded),
            };
            for e in cursor {
                let e = e.unwrap();
                println!(
                    "{}\t{}",
                    String::from_utf8_lossy(&e.key),
                    String::from_utf8_lossy(&e.value)
                );
            }
        }
        "log" => {
            for (n, h) in history.iter().enumerate().rev() {
                println!("v{n}\t{h}");
            }
        }
        "prove" => {
            let key = rest.get(1).unwrap_or_else(|| usage());
            let proof = head.prove(key.as_bytes()).unwrap();
            println!("root\t{}", head.root());
            for page in proof.pages() {
                println!("{}", siri::crypto::hex::encode(page));
            }
        }
        "verify" => {
            let key = rest.get(1).unwrap_or_else(|| usage());
            let root = rest.get(2).and_then(|s| Hash::from_hex(s)).unwrap_or_else(|| usage());
            let pages: Vec<bytes::Bytes> = rest[3..]
                .iter()
                .map(|h| bytes::Bytes::from(siri::crypto::hex::decode(h).expect("bad hex page")))
                .collect();
            let proof = siri::Proof::new(pages);
            match PosTree::verify_proof(root, key.as_bytes(), &proof) {
                siri::ProofVerdict::Present(v) => {
                    println!("PRESENT\t{}", String::from_utf8_lossy(&v))
                }
                siri::ProofVerdict::Absent => println!("ABSENT"),
                siri::ProofVerdict::Invalid(why) => {
                    println!("INVALID\t{why}");
                    std::process::exit(1);
                }
            }
        }
        "diff" => {
            let a = rest.get(1).and_then(|s| Hash::from_hex(s)).unwrap_or_else(|| usage());
            let b = rest.get(2).and_then(|s| Hash::from_hex(s)).unwrap_or_else(|| usage());
            let va = PosTree::open(store.clone(), params, a);
            let vb = PosTree::open(store.clone(), params, b);
            for d in va.diff(&vb).unwrap() {
                let tag = match d.side() {
                    siri::DiffSide::LeftOnly => "-",
                    siri::DiffSide::RightOnly => "+",
                    siri::DiffSide::Changed => "~",
                };
                println!("{tag} {}", String::from_utf8_lossy(&d.key));
            }
        }
        "stats" => {
            let s = store.stats();
            println!("versions       {}", history.len());
            println!("unique pages   {}", s.unique_pages);
            println!("unique bytes   {}", s.unique_bytes);
            println!("logical bytes  {}", s.logical_bytes);
            println!("dedup savings  {:.1}%", s.dedup_savings() * 100.0);
            if !head_root.is_zero() {
                let reopened = PosTree::open(store, params, head_root);
                println!("records        {}", reopened.len().unwrap());
            }
        }
        _ => usage(),
    }
}
