//! `siri` — a small CLI over a persistent POS-Tree store.
//!
//! A versioned, tamper-evident key-value database in one directory:
//!
//! ```text
//! siri --db ./data.siri put <key> <value>     # new version per write
//! siri --db ./data.siri get <key> [--root H]  # read head or any version
//! siri --db ./data.siri scan [prefix]
//! siri --db ./data.siri log                   # version history (digests)
//! siri --db ./data.siri prove <key>           # emit a proof (hex pages)
//! siri --db ./data.siri diff <rootA> <rootB>
//! siri --db ./data.siri gc [--keep N]         # retire old versions, compact disk
//! siri --db ./data.siri compact               # drop orphan pages, keep all versions
//! siri --db ./data.siri stats
//! ```
//!
//! The head pointer and history live in a sidecar file `<db>.head` (the
//! segmented page store is content-addressed and append-only, so the
//! sidecar is the only mutable state). Mutating commands fsync before they
//! acknowledge — `--fsync never|commit|every=N|group=MS` tunes that
//! (`group` batches concurrent committers into one fsync per MS-long tick).

use std::sync::Arc;

use siri::{
    chain_cursors, gc, Hash, NodeStore, PageSet, PosParams, PosTree, ShardManifest, ShardRouter,
    SharedStore, SiriIndex,
};
use siri_store::{FileStore, FileStoreOptions, FsyncPolicy};

fn usage() -> ! {
    eprintln!(
        "usage: siri --db <path> [--fsync never|commit|every=N|group=MS] [--shards N] <command>\n\
         commands:\n\
         \x20 put <key> <value>      write one record (creates a version)\n\
         \x20 del <key>              delete one record (creates a version)\n\
         \x20 get <key> [--root H]   read from head or a specific version\n\
         \x20 scan [prefix]          list records (optionally by prefix)\n\
         \x20 load <file>            bulk-load key<TAB>value lines as one version;\n\
         \x20                        with --shards N the tree is cut into N key ranges\n\
         \x20                        built on N threads and the version digest is the\n\
         \x20                        shard-manifest page (reads stay transparent)\n\
         \x20 log                    list version digests, newest first\n\
         \x20 prove <key>            print an anchored Merkle proof for the key\n\
         \x20 prove --range <start> [<end>]  completeness proof for [start, end)\n\
         \x20 prove --batch <key>...  one deduplicated proof for several keys\n\
         \x20                        (all three anchor at the head digest and work\n\
         \x20                        on sharded heads; output is root + proof hex)\n\
         \x20 verify <key> <root> <proof-hex...>  check a membership proof offline\n\
         \x20 verify --range <start> <end|-> <root> <proof-hex...>  check a range\n\
         \x20                        proof offline and print the proven entries\n\
         \x20 diff <rootA> <rootB>   compare two versions\n\
         \x20 gc [--keep N]          retire all but the last N versions (default 1)\n\
         \x20                        and compact the store on disk\n\
         \x20 compact                rewrite segments keeping every version's pages\n\
         \x20 stats                  storage statistics\n\
         \x20 serve [--listen ADDR]  serve this database over the SIRI wire protocol\n\
         \x20                        (default 127.0.0.1:4733; commits land in <db>.head;\n\
         \x20                        --allow-shutdown lets clients stop the server)\n\
         \x20 connect <ADDR> <cmd>   run a command against a remote server; cmd is one of\n\
         \x20                        put/del/get/scan/branches/digest/prove/stats/shutdown\n\
         \x20                        (--branch B targets a branch; default master; stats\n\
         \x20                        prints server totals and per-connection counters;\n\
         \x20                        prove re-verifies the server's proof locally against\n\
         \x20                        the branch digest and also takes --range/--batch)\n\
         \x20 sync <ADDR>            anti-entropy pull: fetch the remote head's missing\n\
         \x20                        pages into this database and record the version\n\
         options:\n\
         \x20 --shards N             shard count for `load` (default 1; max 256).\n\
         \x20                        Sharded heads answer get/scan/stats/gc/prove like\n\
         \x20                        any other version (proofs anchor at the manifest\n\
         \x20                        digest); only diff needs unsharded roots."
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("siri: {msg}");
    std::process::exit(1);
}

/// Proof bytes from CLI args: a single argument is tried as a
/// [`siri::Proof::encode`] artifact first; otherwise every argument is one
/// hex page, in order (the page-per-line form older scripts pipe around).
fn decode_proof_args(args: &[String]) -> siri::Proof {
    if args.len() == 1 {
        if let Some(raw) = siri::crypto::hex::decode(&args[0]) {
            if let Ok(p) = siri::Proof::decode(&raw) {
                return p;
            }
        }
    }
    let pages = args
        .iter()
        .map(|h| {
            bytes::Bytes::from(
                siri::crypto::hex::decode(h).unwrap_or_else(|| fail("bad hex page in proof")),
            )
        })
        .collect();
    siri::Proof::new(pages)
}

fn load_history(path: &str) -> Vec<Hash> {
    std::fs::read_to_string(path).unwrap_or_default().lines().filter_map(Hash::from_hex).collect()
}

fn append_history(path: &str, root: Hash) {
    use std::io::Write;
    let mut f = match std::fs::OpenOptions::new().append(true).create(true).open(path) {
        Ok(f) => f,
        Err(e) => fail(format_args!("cannot open history file {path}: {e}")),
    };
    // The head pointer is part of the acknowledged state: fsync it like
    // the pages it points at, or a version could vanish on power loss.
    if let Err(e) = writeln!(f, "{root}").and_then(|()| f.sync_data()) {
        fail(format_args!("cannot record version in {path}: {e}"));
    }
}

fn write_history(path: &str, roots: &[Hash]) {
    use std::io::Write;
    let text: String = roots.iter().map(|h| format!("{h}\n")).collect();
    let write = std::fs::File::create(path)
        .and_then(|mut f| f.write_all(text.as_bytes()).and_then(|()| f.sync_data()));
    if let Err(e) = write {
        fail(format_args!("cannot rewrite history file {path}: {e}"));
    }
}

/// Open a version digest as its logical tree(s): a shard-manifest digest
/// (see `siri::ShardManifest`) expands into the per-range sub-trees plus
/// the router that partitions them; any other digest is a plain tree.
fn open_heads(store: &SharedStore, params: PosParams, root: Hash) -> (ShardRouter, Vec<PosTree>) {
    if !root.is_zero() {
        if let Ok(Some(page)) = store.try_get(&root) {
            if ShardManifest::is_manifest(&page) {
                let m = ShardManifest::decode(&page)
                    .unwrap_or_else(|e| fail(format_args!("corrupt shard manifest {root}: {e}")));
                let trees =
                    m.roots.iter().map(|&r| PosTree::open(store.clone(), params, r)).collect();
                return (m.router(), trees);
            }
        }
    }
    (ShardRouter::single(), vec![PosTree::open(store.clone(), params, root)])
}

/// Union of the page sets reachable from `roots` (the GC mark phase). A
/// sharded version keeps its manifest page live alongside every
/// sub-tree's pages — retiring it must reclaim all of them together.
fn mark_live(store: &SharedStore, params: PosParams, roots: &[Hash]) -> Vec<PageSet> {
    roots
        .iter()
        .map(|&r| {
            let mut set = PageSet::new();
            if let Ok(Some(page)) = store.try_get(&r) {
                if ShardManifest::is_manifest(&page) {
                    set.insert(r, page.len() as u64);
                }
            }
            let (_, trees) = open_heads(store, params, r);
            for t in &trees {
                set.union_with(&t.page_set());
            }
            set
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut db = String::from("./siri.db");
    let mut fsync = FsyncPolicy::OnCommit;
    let mut shards: usize = 1;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--db" => {
                i += 1;
                db = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--fsync" => {
                i += 1;
                fsync = args.get(i).and_then(|s| FsyncPolicy::parse(s)).unwrap_or_else(|| usage());
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| (1..=256).contains(&n))
                    .unwrap_or_else(|| usage());
            }
            _ => rest.push(args[i].clone()),
        }
        i += 1;
    }
    if rest.is_empty() {
        usage();
    }

    // `connect` talks to a remote server; it neither needs nor creates a
    // local database, so handle it before the store opens.
    if rest[0] == "connect" {
        run_connect(&rest[1..]);
        return;
    }

    let head_file = format!("{db}.head");
    let opts = FileStoreOptions { fsync, ..FileStoreOptions::default() };
    let fs = match FileStore::open_with(&db, opts) {
        Ok((fs, _)) => Arc::new(fs),
        Err(e) => fail(format_args!("cannot open database at {db}: {e}")),
    };
    let store: SharedStore = fs.clone();
    let history = load_history(&head_file);
    let head_root = history.last().copied().unwrap_or(Hash::ZERO);
    let params = PosParams::default();
    // The head may be a plain tree root or a shard-manifest digest (from
    // `load --shards N`); every read/write below goes through the routed
    // view so both look the same to the user.
    let (router, heads) = open_heads(&store, params, head_root);

    // Re-publish a sharded head after one sub-tree moved: fresh manifest
    // page first (content-addressed like any node page), digest second.
    let publish = |heads: &[PosTree], changed: usize, next: &PosTree| -> Hash {
        if heads.len() == 1 {
            return next.root();
        }
        let mut roots: Vec<Hash> = heads.iter().map(SiriIndex::root).collect();
        roots[changed] = next.root();
        let manifest = ShardManifest::new(router.boundaries().to_vec(), roots);
        match store.try_put(bytes::Bytes::from(manifest.encode())) {
            Ok(digest) => digest,
            Err(e) => fail(format_args!("cannot store shard manifest: {e}")),
        }
    };

    match rest[0].as_str() {
        "put" => {
            let (key, value) = match (rest.get(1), rest.get(2)) {
                (Some(k), Some(v)) => (k.clone(), v.clone()),
                _ => usage(),
            };
            let shard = router.shard_of(key.as_bytes());
            let mut next = heads[shard].clone();
            if let Err(e) = next.insert(key.as_bytes(), bytes::Bytes::from(value.into_bytes())) {
                fail(format_args!("write failed: {e}"));
            }
            let digest = publish(&heads, shard, &next);
            // Durability before acknowledgement: the page log is flushed
            // per the fsync policy, *then* the head pointer moves.
            if let Err(e) = fs.note_commit() {
                fail(format_args!("fsync failed, version not recorded: {e}"));
            }
            append_history(&head_file, digest);
            println!("{digest}");
        }
        "del" => {
            let key = rest.get(1).unwrap_or_else(|| usage());
            let shard = router.shard_of(key.as_bytes());
            let mut next = heads[shard].clone();
            if let Err(e) = next.delete(key.as_bytes()) {
                fail(format_args!("delete failed: {e}"));
            }
            let digest = publish(&heads, shard, &next);
            if let Err(e) = fs.note_commit() {
                fail(format_args!("fsync failed, version not recorded: {e}"));
            }
            append_history(&head_file, digest);
            println!("{digest}");
        }
        "get" => {
            let key = rest.get(1).unwrap_or_else(|| usage());
            let (router, heads) = match rest.iter().position(|a| a == "--root") {
                Some(p) => {
                    let h =
                        rest.get(p + 1).and_then(|s| Hash::from_hex(s)).unwrap_or_else(|| usage());
                    open_heads(&store, params, h)
                }
                None => (router, heads),
            };
            match heads[router.shard_of(key.as_bytes())].get(key.as_bytes()) {
                Ok(Some(v)) => println!("{}", String::from_utf8_lossy(&v)),
                Ok(None) => {
                    eprintln!("(not found)");
                    std::process::exit(1);
                }
                Err(e) => fail(format_args!("read failed: {e}")),
            }
        }
        "scan" => {
            // Stream through the unified cursor — constant memory, even
            // for a full-database scan. A sharded head chains the per-range
            // cursors in partition order (each sub-tree only holds its own
            // range, so concatenation preserves the global key order).
            let cursor = chain_cursors(
                heads
                    .iter()
                    .map(|h| match rest.get(1) {
                        Some(prefix) => h.scan_prefix(prefix.as_bytes()),
                        None => h.range(std::ops::Bound::Unbounded, std::ops::Bound::Unbounded),
                    })
                    .collect(),
            );
            for e in cursor {
                let e = e.unwrap_or_else(|e| fail(format_args!("scan failed: {e}")));
                println!(
                    "{}\t{}",
                    String::from_utf8_lossy(&e.key),
                    String::from_utf8_lossy(&e.value)
                );
            }
        }
        "load" => {
            let path = rest.get(1).unwrap_or_else(|| usage());
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format_args!("cannot read {path}: {e}")));
            let mut data: Vec<siri::Entry> = Vec::new();
            for line in text.lines().filter(|l| !l.is_empty()) {
                let (k, v) = line.split_once('\t').unwrap_or((line, ""));
                data.push(siri::Entry::new(k.as_bytes().to_vec(), v.as_bytes().to_vec()));
            }
            // Sort + last-write-wins dedup, then cut into `--shards`
            // equal-count ranges and build each sub-tree on its own thread
            // (mirrors `Forkbase::bulk_load`).
            data.sort_by(|a, b| a.key.cmp(&b.key));
            let mut entries: Vec<siri::Entry> = Vec::with_capacity(data.len());
            for e in data {
                match entries.last_mut() {
                    Some(last) if last.key == e.key => *last = e,
                    _ => entries.push(e),
                }
            }
            let count = entries.len();
            let want = shards.min(count.max(1));
            let mut boundaries: Vec<bytes::Bytes> = Vec::new();
            for i in 1..want {
                let b = entries[i * count / want].key.clone();
                if boundaries.last().is_none_or(|p| *p < b) {
                    boundaries.push(b);
                }
            }
            let router = ShardRouter::new(boundaries);
            let mut slices: Vec<Vec<siri::Entry>> =
                (0..router.shard_count()).map(|_| Vec::new()).collect();
            for e in entries {
                slices[router.shard_of(&e.key)].push(e);
            }
            let built: Vec<PosTree> = std::thread::scope(|scope| {
                let handles: Vec<_> = slices
                    .into_iter()
                    .map(|slice| {
                        let store = store.clone();
                        scope.spawn(move || {
                            let mut t = PosTree::open(store, params, Hash::ZERO);
                            t.batch_insert(slice).map(|()| t)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(Ok(t)) => t,
                        Ok(Err(e)) => fail(format_args!("load failed: {e}")),
                        Err(_) => fail("load worker panicked"),
                    })
                    .collect()
            });
            let digest = if built.len() == 1 {
                built[0].root()
            } else {
                let roots = built.iter().map(SiriIndex::root).collect();
                let manifest = ShardManifest::new(router.boundaries().to_vec(), roots);
                match store.try_put(bytes::Bytes::from(manifest.encode())) {
                    Ok(d) => d,
                    Err(e) => fail(format_args!("cannot store shard manifest: {e}")),
                }
            };
            if let Err(e) = fs.note_commit() {
                fail(format_args!("fsync failed, version not recorded: {e}"));
            }
            append_history(&head_file, digest);
            println!("loaded {count} record(s) into {} shard(s)\n{digest}", built.len());
        }
        "log" => {
            for (n, h) in history.iter().enumerate().rev() {
                println!("v{n}\t{h}");
            }
        }
        "prove" => {
            // Anchored proofs: on a sharded head the shard-manifest page is
            // the first proof page, so the whole proof verifies against the
            // version digest alone — the same contract the engine and the
            // wire protocol honor. The proof prints as one hex artifact
            // (`siri::Proof::encode`) after the anchoring root.
            use siri::Session;
            let engine = siri::Forkbase::with_store(siri::PosFactory(params), store.clone(), 0);
            engine.open_branch("master", head_root);
            let (digest, proof) = match rest.get(1).map(String::as_str) {
                Some("--range") => {
                    let start = rest.get(2).unwrap_or_else(|| usage());
                    let end = rest.get(3).filter(|e| e.as_str() != "-");
                    let eb = match &end {
                        Some(e) => std::ops::Bound::Excluded(e.as_bytes()),
                        None => std::ops::Bound::Unbounded,
                    };
                    Session::prove_range(
                        &engine,
                        "master",
                        std::ops::Bound::Included(start.as_bytes()),
                        eb,
                    )
                }
                Some("--batch") => {
                    let keys: Vec<bytes::Bytes> = rest[2..]
                        .iter()
                        .map(|k| bytes::Bytes::copy_from_slice(k.as_bytes()))
                        .collect();
                    if keys.is_empty() {
                        usage();
                    }
                    Session::prove_batch(&engine, "master", &keys)
                }
                Some(key) => Session::prove(&engine, "master", key.as_bytes()),
                None => usage(),
            }
            .unwrap_or_else(|e| fail(format_args!("prove failed: {e}")));
            println!("root\t{digest}");
            println!("{}", siri::crypto::hex::encode(&proof.encode()));
        }
        "verify" => {
            let ranged = rest.get(1).map(String::as_str) == Some("--range");
            // Positional layout: `verify <key> <root> <proof-hex...>` or
            // `verify --range <start> <end|-> <root> <proof-hex...>`.
            let args = if ranged { &rest[2..] } else { &rest[1..] };
            let (root_at, hex_from) = if ranged { (2, 3) } else { (1, 2) };
            let root = args.get(root_at).and_then(|s| Hash::from_hex(s)).unwrap_or_else(|| usage());
            let proof = decode_proof_args(&args[hex_from.min(args.len())..]);
            if ranged {
                let start = args.first().unwrap_or_else(|| usage());
                let end = args.get(1).unwrap_or_else(|| usage());
                let eb = if end.as_str() == "-" {
                    std::ops::Bound::Unbounded
                } else {
                    std::ops::Bound::Excluded(end.as_bytes())
                };
                match siri::verify_anchored_range(
                    &siri::PosProofScheme,
                    root,
                    std::ops::Bound::Included(start.as_bytes()),
                    eb,
                    &proof,
                ) {
                    siri::RangeVerdict::Complete(entries) => {
                        println!("COMPLETE\t{} entr(ies)", entries.len());
                        for e in entries {
                            println!(
                                "{}\t{}",
                                String::from_utf8_lossy(&e.key),
                                String::from_utf8_lossy(&e.value)
                            );
                        }
                    }
                    siri::RangeVerdict::Invalid(why) => {
                        println!("INVALID\t{why}");
                        std::process::exit(1);
                    }
                }
            } else {
                let key = args.first().unwrap_or_else(|| usage());
                match siri::verify_anchored_membership(
                    &siri::PosProofScheme,
                    root,
                    key.as_bytes(),
                    &proof,
                ) {
                    siri::ProofVerdict::Present(v) => {
                        println!("PRESENT\t{}", String::from_utf8_lossy(&v))
                    }
                    siri::ProofVerdict::Absent => println!("ABSENT"),
                    siri::ProofVerdict::Invalid(why) => {
                        println!("INVALID\t{why}");
                        std::process::exit(1);
                    }
                }
            }
        }
        "diff" => {
            let a = rest.get(1).and_then(|s| Hash::from_hex(s)).unwrap_or_else(|| usage());
            let b = rest.get(2).and_then(|s| Hash::from_hex(s)).unwrap_or_else(|| usage());
            for h in [a, b] {
                if let Ok(Some(page)) = store.try_get(&h) {
                    if ShardManifest::is_manifest(&page) {
                        fail(format_args!(
                            "{h} is a shard-manifest digest; diff wants plain tree roots \
                             (use the sub-roots it lists)"
                        ));
                    }
                }
            }
            let va = PosTree::open(store.clone(), params, a);
            let vb = PosTree::open(store.clone(), params, b);
            let diff = va.diff(&vb).unwrap_or_else(|e| fail(format_args!("diff failed: {e}")));
            for d in diff {
                let tag = match d.side() {
                    siri::DiffSide::LeftOnly => "-",
                    siri::DiffSide::RightOnly => "+",
                    siri::DiffSide::Changed => "~",
                };
                println!("{tag} {}", String::from_utf8_lossy(&d.key));
            }
        }
        "gc" => {
            // Retire all versions but the newest `--keep N`: mark their
            // reachable pages, compact everything else away, and truncate
            // the history sidecar to match.
            let keep = match rest.iter().position(|a| a == "--keep") {
                Some(p) => rest
                    .get(p + 1)
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage()),
                None => 1,
            };
            if history.is_empty() {
                println!("nothing to collect (no versions)");
                return;
            }
            let kept: Vec<Hash> = history[history.len().saturating_sub(keep)..].to_vec();
            let live = mark_live(&store, params, &kept);
            let disk_before = fs.disk_bytes();
            // Truncate the sidecar *before* sweeping: a crash in between
            // leaves harmless orphan pages (a later gc/compact reclaims
            // them), while the reverse order would leave history naming
            // versions whose pages are gone.
            write_history(&head_file, &kept);
            match gc::sweep_unreachable(fs.as_ref(), &live) {
                Ok((pages, bytes)) => {
                    println!(
                        "retired {} version(s); reclaimed {pages} page(s), {bytes} B \
                         (disk {disk_before} B -> {} B)",
                        history.len() - kept.len(),
                        fs.disk_bytes()
                    );
                }
                Err(e) => fail(format_args!("gc failed (store unchanged): {e}")),
            }
        }
        "compact" => {
            // Keep every version reachable; drop only orphan pages (e.g.
            // from commits whose version was never recorded) and rewrite
            // the segments contiguously.
            let live = mark_live(&store, params, &history);
            let disk_before = fs.disk_bytes();
            match gc::sweep_unreachable(fs.as_ref(), &live) {
                Ok((pages, bytes)) => println!(
                    "compacted: reclaimed {pages} orphan page(s), {bytes} B \
                     (disk {disk_before} B -> {} B, {} segment(s))",
                    fs.disk_bytes(),
                    fs.segment_count()
                ),
                Err(e) => fail(format_args!("compaction failed (store unchanged): {e}")),
            }
        }
        "serve" => {
            let listen = match rest.iter().position(|a| a == "--listen") {
                Some(p) => rest.get(p + 1).cloned().unwrap_or_else(|| usage()),
                None => String::from("127.0.0.1:4733"),
            };
            let allow_shutdown = rest.iter().any(|a| a == "--allow-shutdown");
            // The served engine shares the CLI's store and head sidecar:
            // fsync per the policy first, then record the head — the same
            // durability-before-acknowledgement order `put` uses.
            let engine =
                Arc::new(siri::Forkbase::with_store(siri::PosFactory(params), store.clone(), 0));
            engine.open_branch("master", head_root);
            let hook_fs = fs.clone();
            let hook_head = head_file.clone();
            let hook: siri::server::CommitHook = Box::new(move |branch, root| {
                if branch != "master" {
                    return;
                }
                if let Err(e) = hook_fs.note_commit() {
                    fail(format_args!("fsync failed, version not recorded: {e}"));
                }
                append_history(&hook_head, root);
            });
            let opts =
                siri::ServerOptions { allow_remote_shutdown: allow_shutdown, ..Default::default() };
            match siri::serve_addr(engine, &listen, opts, Some(hook)) {
                Ok(handle) => {
                    println!("listening on {}", handle.addr());
                    handle.wait();
                }
                Err(e) => fail(format_args!("cannot bind {listen}: {e}")),
            }
        }
        "sync" => {
            let addr = rest.get(1).unwrap_or_else(|| usage());
            let branch = match rest.iter().position(|a| a == "--branch") {
                Some(p) => rest.get(p + 1).cloned().unwrap_or_else(|| usage()),
                None => String::from("master"),
            };
            let session = match siri::RemoteSession::connect(addr.as_str()) {
                Ok(s) => s,
                Err(e) => fail(format_args!("cannot connect to {addr}: {e}")),
            };
            let sync = session.sync_branch(
                &branch,
                store.as_ref(),
                siri::pos_tree::Node::children_of_page,
                &siri::SyncOptions::default(),
            );
            match sync {
                Ok((digest, report)) => {
                    if let Err(e) = fs.note_commit() {
                        fail(format_args!("fsync failed, version not recorded: {e}"));
                    }
                    if history.last() != Some(&digest) {
                        append_history(&head_file, digest);
                    }
                    println!(
                        "synced {branch} to {digest}\n\
                         fetched {} page(s), {} B in {} round trip(s); \
                         {} subtree(s) already present",
                        report.pages_fetched,
                        report.bytes_fetched,
                        report.round_trips,
                        report.subtrees_skipped
                    );
                    if report.missing > 0 {
                        fail(format_args!("{} page(s) missing at the source", report.missing));
                    }
                }
                Err(e) => fail(format_args!("sync failed: {e}")),
            }
        }
        "stats" => {
            let s = store.stats();
            println!("versions       {}", history.len());
            println!("unique pages   {}", s.unique_pages);
            println!("unique bytes   {}", s.unique_bytes);
            println!("logical bytes  {}", s.logical_bytes);
            println!("dedup savings  {:.1}%", s.dedup_savings() * 100.0);
            println!("disk bytes     {}", fs.disk_bytes());
            println!("segments       {}", fs.segment_count());
            println!("commits        {}", s.commits);
            println!("fsyncs         {}", s.fsyncs);
            if !head_root.is_zero() {
                let mut records = 0u64;
                for t in &heads {
                    match t.len() {
                        Ok(n) => records += n as u64,
                        Err(e) => fail(format_args!("cannot read head version: {e}")),
                    }
                }
                println!("records        {records}");
                if heads.len() > 1 {
                    println!("head shards    {}", heads.len());
                }
            }
        }
        _ => usage(),
    }
}

/// `siri connect <ADDR> <cmd>` — run one command against a remote server.
/// Mirrors the local commands where both exist (`put`/`get`/`scan`/...),
/// plus the server-only verbs (`branches`, `digest`, `stats`, `shutdown`).
fn run_connect(rest: &[String]) {
    use siri::Session;

    let mut branch = String::from("master");
    let mut pos: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        if rest[i] == "--branch" {
            i += 1;
            branch = rest.get(i).cloned().unwrap_or_else(|| usage());
        } else {
            pos.push(&rest[i]);
        }
        i += 1;
    }
    let (addr, cmd) = match (pos.first(), pos.get(1)) {
        (Some(a), Some(c)) => (a.as_str(), c.as_str()),
        _ => usage(),
    };
    let session = match siri::RemoteSession::connect(addr) {
        Ok(s) => s,
        Err(e) => fail(format_args!("cannot connect to {addr}: {e}")),
    };
    match cmd {
        "put" => {
            let (key, value) = match (pos.get(2), pos.get(3)) {
                (Some(k), Some(v)) => (k.as_bytes().to_vec(), v.as_bytes().to_vec()),
                _ => usage(),
            };
            let mut batch = siri::WriteBatch::new();
            batch.put(key, value);
            match session.commit(&branch, batch) {
                Ok(info) => println!("{}", info.root),
                Err(e) => fail(format_args!("write failed: {e}")),
            }
        }
        "del" => {
            let key = pos.get(2).unwrap_or_else(|| usage());
            let mut batch = siri::WriteBatch::new();
            batch.delete(key.as_bytes().to_vec());
            match session.commit(&branch, batch) {
                Ok(info) => println!("{}", info.root),
                Err(e) => fail(format_args!("delete failed: {e}")),
            }
        }
        "get" => {
            let key = pos.get(2).unwrap_or_else(|| usage());
            match session.get(&branch, key.as_bytes()) {
                Ok(Some(v)) => println!("{}", String::from_utf8_lossy(&v)),
                Ok(None) => {
                    eprintln!("(not found)");
                    std::process::exit(1);
                }
                Err(e) => fail(format_args!("read failed: {e}")),
            }
        }
        "scan" => {
            let cursor = match pos.get(2) {
                Some(prefix) => session.scan_prefix(&branch, prefix.as_bytes()),
                None => {
                    session.range(&branch, std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)
                }
            };
            let cursor = cursor.unwrap_or_else(|e| fail(format_args!("scan failed: {e}")));
            for e in cursor {
                let e = e.unwrap_or_else(|e| fail(format_args!("scan failed: {e}")));
                println!(
                    "{}\t{}",
                    String::from_utf8_lossy(&e.key),
                    String::from_utf8_lossy(&e.value)
                );
            }
        }
        "branches" => match session.branches() {
            Ok(names) => {
                for name in names {
                    println!("{name}");
                }
            }
            Err(e) => fail(format_args!("cannot list branches: {e}")),
        },
        "digest" => match session.branch_digest(&branch) {
            Ok(h) => println!("{h}"),
            Err(e) => fail(format_args!("cannot read branch digest: {e}")),
        },
        "prove" => {
            // The RemoteSession verifies every proof locally against the
            // branch digest before returning it, so a printed proof is
            // already known-good evidence — a lying server fails here.
            let result = match pos.get(2).map(|s| s.as_str()) {
                Some("--range") => {
                    let start = pos.get(3).unwrap_or_else(|| usage());
                    let end = pos.get(4).filter(|e| e.as_str() != "-");
                    let eb = match &end {
                        Some(e) => std::ops::Bound::Excluded(e.as_bytes()),
                        None => std::ops::Bound::Unbounded,
                    };
                    session.prove_range(&branch, std::ops::Bound::Included(start.as_bytes()), eb)
                }
                Some("--batch") => {
                    let keys: Vec<bytes::Bytes> = pos[3..]
                        .iter()
                        .map(|k| bytes::Bytes::copy_from_slice(k.as_bytes()))
                        .collect();
                    if keys.is_empty() {
                        usage();
                    }
                    session.prove_batch(&branch, &keys)
                }
                Some(key) => session.prove(&branch, key.as_bytes()),
                None => usage(),
            };
            match result {
                Ok((root, proof)) => {
                    println!("root\t{root}");
                    println!("{}", siri::crypto::hex::encode(&proof.encode()));
                }
                Err(e) => fail(format_args!("prove failed: {e}")),
            }
        }
        "stats" => match session.server_stats() {
            Ok(s) => {
                println!("accepted       {}", s.accepted);
                println!("active        {}", s.active);
                println!("rejected      {}", s.rejected);
                println!("requests      {}", s.total_requests);
                println!("bytes in      {}", s.total_bytes_in);
                println!("bytes out     {}", s.total_bytes_out);
                for c in &s.conns {
                    println!(
                        "conn {}\t{}\treq {}\tin {} B\tout {} B\tcommits {}\treads {}\t\
                         scan-pages {}\tsync-pages {}",
                        c.id,
                        c.peer,
                        c.requests,
                        c.bytes_in,
                        c.bytes_out,
                        c.commits,
                        c.reads,
                        c.scan_pages,
                        c.sync_pages
                    );
                }
            }
            Err(e) => fail(format_args!("cannot read server stats: {e}")),
        },
        "shutdown" => match session.shutdown_server() {
            Ok(()) => println!("server stopping"),
            Err(e) => fail(format_args!("shutdown refused: {e}")),
        },
        _ => usage(),
    }
}
