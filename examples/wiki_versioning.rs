//! Wikipedia-style document versioning — the paper's §5.1.2 scenario: a
//! corpus of page abstracts evolving over many versions, with history
//! tracking, rollback, page *takedowns* (write-batch deletes), and storage
//! that grows with the *delta*, not the corpus.
//!
//! Run with: `cargo run --release --example wiki_versioning`

use siri::workloads::wiki::WikiConfig;
use siri::{MemStore, PosParams, PosTree, SiriIndex, VersionStore, WriteBatch};

fn main() -> siri::Result<()> {
    let wiki = WikiConfig { pages: 20_000, update_pct: 1, new_pages_per_version: 25, seed: 3 };
    let store = MemStore::new_shared();

    let mut index = PosTree::new(store.clone(), PosParams::default());
    let mut history: VersionStore<PosTree> = VersionStore::new();

    index.batch_insert(wiki.initial_dump())?;
    history.commit("main", &index, "initial dump");
    let baseline_bytes = store.stats().unique_bytes;

    // Sixty days of edits.
    for day in 1..=60u32 {
        index.batch_insert(wiki.version_delta(day))?;
        history.commit("main", &index, format!("day {day} edits"));
    }
    let stats = store.stats();
    println!(
        "61 versions of a {}-page corpus: {:.1} MiB stored ({:.1} MiB baseline, {:.2}x)",
        wiki.pages,
        stats.unique_bytes as f64 / 1048576.0,
        baseline_bytes as f64 / 1048576.0,
        stats.unique_bytes as f64 / baseline_bytes as f64,
    );
    println!("full history: {} commits on 'main'", history.history("main").len());

    // Compare today's corpus against two weeks ago.
    let two_weeks_ago = history.history("main")[14].index.clone();
    let drift = index.diff(&two_weeks_ago)?;
    println!("pages changed vs 14 versions ago: {}", drift.len());

    // A takedown request removes three pages — one atomic write batch,
    // one new version, history untouched.
    let mut takedown = WriteBatch::new();
    for page in [100u64, 101, 102] {
        takedown.delete(wiki.url(page));
    }
    index.commit(takedown)?;
    history.commit("main", &index, "takedown: pages 100-102");
    assert_eq!(index.get(&wiki.url(101))?, None);
    println!("after takedown: {} pages (previous versions still serve them)", index.len()?);

    // Browse one URL neighborhood through the streaming prefix cursor —
    // no corpus-sized allocation.
    let prefix = wiki.url(200);
    let prefix = &prefix[..prefix.len().saturating_sub(2)];
    let nearby = index.scan_prefix(prefix).count();
    println!("pages sharing the URL prefix {:?}: {nearby}", String::from_utf8_lossy(prefix));

    // An editor branches an old version to restore vandalized content.
    history.branch("restore", "main");
    let tag = history.rollback("restore", 10).expect("history deep enough");
    let restored = history.get(tag).unwrap().index.clone();
    println!(
        "branch 'restore' rolled back 10 versions → digest {} ({} pages)",
        restored.root(),
        restored.len()?
    );

    // Immutability means the rollback is non-destructive.
    assert_eq!(history.head("main").unwrap().index.root(), index.root());

    // Proof that a specific revision of a page is in a specific version.
    let url = wiki.url(123);
    let proof = restored.prove(&url)?;
    let verdict = PosTree::verify_proof(restored.root(), &url, &proof);
    println!(
        "membership proof for page 123 in the restored version: {} pages, ok={}",
        proof.len(),
        verdict.is_valid()
    );
    Ok(())
}
