//! A miniature blockchain transaction ledger — the paper's Ethereum
//! scenario (§5.1.3): every block gets an index over its transactions,
//! the root digest goes into the block header, any client can verify a
//! transaction against the header chain with a Merkle proof, and explorers
//! page through transactions with a streaming range cursor.
//!
//! Run with: `cargo run --release --example blockchain_ledger`

use std::ops::Bound;

use siri::workloads::eth::EthConfig;
use siri::{Hash, MemStore, MerklePatriciaTrie, SiriIndex};

struct BlockHeader {
    number: u64,
    tx_root: Hash,
}

fn main() -> siri::Result<()> {
    // Keep a concrete handle for the failure-injection hooks below.
    let mem = std::sync::Arc::new(MemStore::new());
    let store: siri::SharedStore = mem.clone();
    let eth = EthConfig { txs_per_block: 100, seed: 7 };

    // Mine a little chain: index each block's transactions by hash.
    // Ethereum uses an MPT for exactly this.
    let mut chain: Vec<BlockHeader> = Vec::new();
    for number in 0..20u64 {
        let mut tx_trie = MerklePatriciaTrie::new(store.clone());
        tx_trie.batch_insert(eth.block_entries(number))?;
        chain.push(BlockHeader { number, tx_root: tx_trie.root() });
    }
    println!("built {} blocks; tip tx-root {}", chain.len(), chain.last().unwrap().tx_root);

    // A wallet asks: "is my transaction in block 13?" — full node answers
    // with a proof; the wallet verifies against the header only.
    let tx = eth.transaction(13, 42);
    let tx_key = tx.hash_key();
    let full_node_view = MerklePatriciaTrie::open(store.clone(), chain[13].tx_root);
    let proof = full_node_view.prove(&tx_key)?;
    let verdict = MerklePatriciaTrie::verify_proof(chain[13].tx_root, &tx_key, &proof);
    println!(
        "inclusion proof for tx {}…: {} pages, verified: {}",
        &String::from_utf8_lossy(&tx_key)[..16],
        proof.len(),
        verdict.value().is_some()
    );
    assert_eq!(verdict.value().unwrap().as_ref(), tx.rlp_encode());

    // A block explorer pages through block 13's transactions in hash
    // order: the first page is a bounded cursor, the next starts after the
    // last key seen — no point materializing 100 RLP payloads per request.
    let page: Vec<_> = full_node_view
        .range(Bound::Unbounded, Bound::Unbounded)
        .take(5)
        .collect::<siri::Result<_>>()?;
    let next_page: Vec<_> = full_node_view
        .range(Bound::Excluded(&page.last().unwrap().key[..]), Bound::Unbounded)
        .take(5)
        .collect::<siri::Result<_>>()?;
    println!(
        "explorer paging: txs {}… then {}…",
        &String::from_utf8_lossy(&page[0].key)[..12],
        &String::from_utf8_lossy(&next_page[0].key)[..12],
    );
    assert!(page.last().unwrap().key < next_page[0].key);

    // Storage accounting: identical transactions across blocks (there are
    // none here) and identical subtrees deduplicate automatically.
    let stats = store.stats();
    println!(
        "store: {} unique pages, {:.2} MiB (logical {:.2} MiB)",
        stats.unique_pages,
        stats.unique_bytes as f64 / 1048576.0,
        stats.logical_bytes as f64 / 1048576.0,
    );

    // Tamper with a stored page — here the root page of block 13's trie —
    // and show that a verification sweep notices. Plain lookups trust the
    // store; *proof verification re-hashes every page*, so corruption
    // anywhere on a proven path is caught.
    mem.corrupt_page(&chain[13].tx_root, 3);
    let mut detected = 0;
    for header in &chain {
        let view = MerklePatriciaTrie::open(store.clone(), header.tx_root);
        let key = eth.transaction(header.number, 0).hash_key();
        if let Ok(proof) = view.prove(&key) {
            if !MerklePatriciaTrie::verify_proof(header.tx_root, &key, &proof).is_valid() {
                detected += 1;
            }
        } else {
            detected += 1;
        }
    }
    println!("verification sweep flagged {detected} corrupted block(s) (expected 1)");
    assert_eq!(detected, 1);
    Ok(())
}
