//! Collaborative data analytics — the paper's §5.4.2 scenario: several
//! teams branch the same dataset, clean/curate (including *deleting* bad
//! records via write batches) independently, and merge back. Page-level
//! deduplication keeps the storage bill near a single copy, and the
//! deduplication metrics quantify it.
//!
//! Run with: `cargo run --release --example collaborative_analytics`

use siri::workloads::YcsbConfig;
use siri::{metrics, Forkbase, MergeStrategy, PosFactory, PosParams, SiriIndex, WriteBatch};

fn main() -> siri::Result<()> {
    let ycsb = YcsbConfig::default();
    let lab = Forkbase::new(PosFactory(PosParams::default()), 0);

    // The shared source dataset. Remember the fork-point root: it is the
    // *base* for deletion-aware three-way merges later.
    lab.put("master", ycsb.dataset(20_000))?;
    let fork_root = lab.head("master").unwrap().root();
    println!("master: {} records, digest {fork_root}", 20_000);

    // Three teams fork and work on different slices.
    for team in ["cleaning", "enrichment", "qa"] {
        lab.fork("master", team)?;
    }
    // Cleaning team normalizes 500 records and *drops* 50 known-bad rows
    // in the same atomic batch — the branch moves one version forward.
    let mut cleaning = WriteBatch::new();
    for i in 0..500 {
        let e = ycsb.entry(i * 3, 1);
        cleaning.put(e.key, e.value);
    }
    for i in 0..50u64 {
        cleaning.delete(ycsb.key(7_000 + i));
    }
    lab.commit("cleaning", cleaning)?;
    assert_eq!(lab.get("cleaning", &ycsb.key(7_010))?, None);
    assert!(lab.get("master", &ycsb.key(7_010))?.is_some(), "master unaffected");
    // Enrichment team adds 1000 derived records.
    lab.put("enrichment", (0..1000).map(|i| ycsb.entry(100_000 + i, 0)).collect())?;
    // QA team flags 200 records (disjoint from cleaning's edits).
    lab.put("qa", (0..200).map(|i| ycsb.entry(50_000 + i, 2)).collect())?;
    println!("branches: {:?}", lab.branches());

    // How much storage do four branches cost? Almost one copy:
    let sets: Vec<siri::PageSet> = ["master", "cleaning", "enrichment", "qa"]
        .iter()
        .map(|b| lab.head(b).unwrap().page_set())
        .collect();
    let report = metrics::storage_report(&sets);
    println!(
        "4 branches: stored {:.1} MiB vs {:.1} MiB if private copies — dedup ratio {:.3}, sharing {:.3}",
        report.stored_bytes as f64 / 1048576.0,
        report.logical_bytes as f64 / 1048576.0,
        report.deduplication_ratio,
        report.node_sharing_ratio,
    );

    // Merge everything back. Enrichment and QA only *added* records, so
    // the strict policy merges them cleanly…
    for team in ["enrichment", "qa"] {
        let outcome = lab.merge_branches("master", team, MergeStrategy::Strict)?;
        println!(
            "merged {team}: +{} records, {} conflicts",
            outcome.added_from_right, outcome.conflicts_resolved
        );
    }
    // …while cleaning *edited* and *deleted* shared records. A two-way
    // merge cannot see deletions (absent-on-right is indistinguishable
    // from never-added), so merge three-way from the fork point: edits of
    // keys master left alone apply cleanly, and the 50 dropped rows
    // actually stay dropped in master.
    let outcome =
        lab.merge_branches_with_base("master", "cleaning", fork_root, MergeStrategy::Strict)?;
    println!(
        "merged cleaning (3-way): {} edit(s)/add(s), {} deletion(s) propagated, {} conflict(s)",
        outcome.added_from_right, outcome.removed_by_right, outcome.conflicts_resolved
    );
    assert_eq!(lab.get("master", &ycsb.key(7_010))?, None, "the takedown survived the merge");

    // …while overlapping edits are caught.
    lab.fork("master", "rogue")?;
    lab.put("rogue", vec![ycsb.entry(0, 7)])?;
    lab.put("master", vec![ycsb.entry(0, 8)])?;
    match lab.merge_branches("master", "rogue", MergeStrategy::Strict) {
        Err(siri::IndexError::MergeConflict { conflicts }) => {
            println!("strict merge rejected {} conflicting key(s) ✓", conflicts.len());
        }
        other => panic!("expected a conflict, got {other:?}"),
    }
    // Resolve by policy.
    let outcome = lab.merge_branches("master", "rogue", MergeStrategy::PreferRight)?;
    println!("re-merged preferring rogue: {} conflict(s) resolved", outcome.conflicts_resolved);

    // Merged and absorbed, the rogue branch can go. Deleting a branch
    // drops only its head pointer — pages are content-addressed and
    // shared, so every other branch keeps its full page set.
    lab.delete_branch("rogue")?;
    println!("after cleanup, branches: {:?}", lab.branches());
    assert!(lab.get("master", &ycsb.key(1))?.is_some());
    Ok(())
}
