//! Collaborative data analytics — the paper's §5.4.2 scenario: several
//! teams branch the same dataset, clean/curate independently, and merge
//! back. Page-level deduplication keeps the storage bill near a single
//! copy, and the deduplication metrics quantify it.
//!
//! Run with: `cargo run --release --example collaborative_analytics`

use siri::workloads::YcsbConfig;
use siri::{metrics, Forkbase, MergeStrategy, PosFactory, PosParams, SiriIndex};

fn main() -> siri::Result<()> {
    let ycsb = YcsbConfig::default();
    let mut lab = Forkbase::new(PosFactory(PosParams::default()), 0);

    // The shared source dataset.
    lab.put("master", ycsb.dataset(20_000))?;
    println!("master: {} records, digest {}", 20_000, lab.head("master").unwrap().root());

    // Three teams fork and work on different slices.
    for team in ["cleaning", "enrichment", "qa"] {
        lab.fork("master", team)?;
    }
    // Cleaning team normalizes 500 records.
    lab.put("cleaning", (0..500).map(|i| ycsb.entry(i * 3, 1)).collect())?;
    // Enrichment team adds 1000 derived records.
    lab.put("enrichment", (0..1000).map(|i| ycsb.entry(100_000 + i, 0)).collect())?;
    // QA team flags 200 records (disjoint from cleaning's edits).
    lab.put("qa", (0..200).map(|i| ycsb.entry(50_000 + i, 2)).collect())?;

    // How much storage do four branches cost? Almost one copy:
    let sets: Vec<siri::PageSet> = ["master", "cleaning", "enrichment", "qa"]
        .iter()
        .map(|b| lab.head(b).unwrap().page_set())
        .collect();
    let report = metrics::storage_report(&sets);
    println!(
        "4 branches: stored {:.1} MiB vs {:.1} MiB if private copies — dedup ratio {:.3}, sharing {:.3}",
        report.stored_bytes as f64 / 1048576.0,
        report.logical_bytes as f64 / 1048576.0,
        report.deduplication_ratio,
        report.node_sharing_ratio,
    );

    // Merge everything back. Enrichment and QA only *added* records, so
    // the strict policy merges them cleanly…
    for team in ["enrichment", "qa"] {
        let outcome = lab.merge_branches("master", team, MergeStrategy::Strict)?;
        println!(
            "merged {team}: +{} records, {} conflicts",
            outcome.added_from_right, outcome.conflicts_resolved
        );
    }
    // …while cleaning *edited* shared records. Two-way merge sees every
    // edit-vs-base pair as a conflict (§4.1.4: a selection strategy must
    // be given), so absorb the team's edits by preferring their side.
    let outcome = lab.merge_branches("master", "cleaning", MergeStrategy::PreferRight)?;
    println!("merged cleaning: {} edited record(s) absorbed", outcome.conflicts_resolved);

    // …while overlapping edits are caught.
    lab.fork("master", "rogue")?;
    lab.put("rogue", vec![ycsb.entry(0, 7)])?;
    lab.put("master", vec![ycsb.entry(0, 8)])?;
    match lab.merge_branches("master", "rogue", MergeStrategy::Strict) {
        Err(siri::IndexError::MergeConflict { conflicts }) => {
            println!("strict merge rejected {} conflicting key(s) ✓", conflicts.len());
        }
        other => panic!("expected a conflict, got {other:?}"),
    }
    // Resolve by policy.
    let outcome = lab.merge_branches("master", "rogue", MergeStrategy::PreferRight)?;
    println!("re-merged preferring rogue: {} conflict(s) resolved", outcome.conflicts_resolved);
    Ok(())
}
