//! Quickstart: versioned, tamper-evident key-value indexing in a few
//! lines — write batches in, streaming cursors out.
//!
//! Run with: `cargo run --release --example quickstart`

use std::ops::Bound;

use siri::{Bytes, MemStore, MergeStrategy, PosParams, PosTree, SiriIndex, WriteBatch};

fn main() -> siri::Result<()> {
    // One shared content-addressed store; every index version lives in it.
    let store = MemStore::new_shared();
    let mut accounts = PosTree::new(store, PosParams::default());

    // All writes are batches of puts and deletes, applied atomically in
    // one copy-on-write pass. Each commit creates a new immutable version.
    let mut genesis = WriteBatch::new();
    genesis
        .put(&b"alice"[..], &b"100"[..])
        .put(&b"bob"[..], &b"250"[..])
        .put(&b"carol"[..], &b"75"[..]);
    accounts.commit(genesis)?;
    println!("v1 digest: {}", accounts.root());

    // Snapshots are free: clone the handle. A mixed batch then closes
    // carol's account and reprices alice in a single version step.
    let v1 = accounts.clone();
    let mut day_two = WriteBatch::new();
    day_two.put(&b"alice"[..], &b"42"[..]).delete(&b"carol"[..]);
    accounts.commit(day_two)?;
    println!("v2 digest: {}", accounts.root());

    // Old versions stay fully readable — including the deleted record.
    assert_eq!(v1.get(b"alice")?.unwrap().as_ref(), b"100");
    assert_eq!(v1.get(b"carol")?.unwrap().as_ref(), b"75");
    assert_eq!(accounts.get(b"alice")?.unwrap().as_ref(), b"42");
    assert_eq!(accounts.get(b"carol")?, None);

    // Reads stream through a lazy cursor: scans, prefix scans and bounded
    // ranges never materialize the dataset.
    print!("v2 accounts in [a, c): ");
    for entry in accounts.range(Bound::Included(b"a"), Bound::Excluded(b"c")) {
        let entry = entry?;
        print!(
            "{}={} ",
            String::from_utf8_lossy(&entry.key),
            String::from_utf8_lossy(&entry.value)
        );
    }
    println!();

    // Diff two versions structurally — only changed subtrees are visited.
    let changes = v1.diff(&accounts)?;
    println!("v1 → v2 changed {} record(s):", changes.len());
    for d in &changes {
        println!(
            "  {}: {:?} → {:?}",
            String::from_utf8_lossy(&d.key),
            d.left.as_deref().map(String::from_utf8_lossy),
            d.right.as_deref().map(String::from_utf8_lossy),
        );
    }

    // Merge a divergent branch. Both sides touched `alice` (main set it to
    // 42, the branch still carries 100), so the strict policy aborts —
    // "the process must be interrupted and a selection strategy must be
    // given by the end user" (§4.1.4). Resolve by preferring main.
    let mut branch = v1.clone();
    branch.insert(b"dave", Bytes::from_static(b"500"))?;
    assert!(siri::merge(&accounts, &branch, MergeStrategy::Strict).is_err());
    let outcome = siri::merge(&accounts, &branch, MergeStrategy::PreferLeft)?;
    println!(
        "merged branch: +{} record(s), {} conflict(s) resolved, digest {}",
        outcome.added_from_right,
        outcome.conflicts_resolved,
        outcome.merged.root()
    );

    // Tamper evidence: prove membership against the digest alone.
    let proof = accounts.prove(b"bob")?;
    let verdict = PosTree::verify_proof(accounts.root(), b"bob", &proof);
    println!("proof for bob ({} pages): {:?}", proof.len(), verdict.value().is_some());

    // A tampered proof is rejected.
    let mut bad = proof.clone();
    bad.tamper(0, 12);
    assert!(!PosTree::verify_proof(accounts.root(), b"bob", &bad).is_valid());
    println!("tampered proof rejected ✓");

    // ── Persistence ─────────────────────────────────────────────────────
    // The same index runs unchanged on the durable backend: a segmented,
    // compacting, fsync-on-commit FileStore. Only the store handle differs.
    let dir = std::env::temp_dir().join("siri-quickstart-db");
    let _ = std::fs::remove_dir_all(&dir);
    let durable_root = {
        let (fs, _) = siri::FileStore::open(&dir).expect("open store directory");
        let fs = std::sync::Arc::new(fs);
        let mut ledger = PosTree::new(fs.clone() as siri::SharedStore, PosParams::default());
        let mut batch = WriteBatch::new();
        batch.put(&b"alice"[..], &b"42"[..]).put(&b"bob"[..], &b"250"[..]);
        let root = ledger.commit(batch)?;
        fs.note_commit().expect("fsync"); // durable before acknowledged
        root
    }; // handle dropped — "the process exits"

    let (fs, recovered) = siri::FileStore::open(&dir).expect("reopen store directory");
    let reopened = PosTree::open(
        std::sync::Arc::new(fs) as siri::SharedStore,
        PosParams::default(),
        durable_root,
    );
    println!(
        "reopened from disk: {} page(s) recovered, alice={}",
        recovered,
        String::from_utf8_lossy(&reopened.get(b"alice")?.unwrap())
    );
    assert_eq!(reopened.root(), durable_root, "same digest on disk as in memory");
    Ok(())
}
