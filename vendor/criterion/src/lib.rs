//! Minimal, vendored stand-in for the `criterion` crate.
//!
//! Implements the subset the bench files use — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `sample_size`,
//! `throughput`, `bench_function`, `Bencher::iter` — with a simple but
//! honest measurement loop: per sample, the closure runs in a timed batch
//! sized to ≈5 ms, and the harness reports the median, minimum and maximum
//! per-iteration time across samples (median is robust against scheduler
//! noise, which is what criterion's estimator is after). Results print as
//!
//! ```text
//! group/name            median   12_345 ns/iter  (min 11_900, max 13_001, 20 samples)
//! ```
//!
//! Filters work like libtest: `cargo bench -- <substring>` runs only
//! benchmarks whose `group/name` id contains the substring.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("function", parameter)`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Id carrying only a parameter (`BenchmarkId::from_parameter(p)`).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation; folded into the report as MB/s or Melem/s.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Parse libtest-style CLI args (first non-flag argument = filter).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-') && a != "--bench");
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
            filter: self.filter.clone(),
        }
    }

    /// Ungrouped benchmark (prints under the pseudo-group "bench").
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    filter: Option<String>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into().id);
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return self;
            }
        }

        // Calibration pass: size a batch to ≈5 ms.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters: batch, elapsed: Duration::ZERO };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / batch as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let min = samples_ns[0];
        let max = samples_ns[samples_ns.len() - 1];

        let thrpt = match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                format!("  {:>8.1} MB/s", bytes as f64 / median * 1e9 / 1e6)
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>8.2} Melem/s", n as f64 / median * 1e9 / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{full_id:<44} median {median:>12.0} ns/iter  (min {min:.0}, max {max:.0}, {} samples){thrpt}",
            samples_ns.len()
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Passed to the measured closure; `iter` times `iters` runs of the body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("mpt").id, "mpt");
    }
}
