//! Minimal, vendored stand-in for the `rand` crate.
//!
//! Implements the subset the workload generators use: `StdRng` (a
//! deterministic xoshiro256++ seeded via SplitMix64), the `Rng` /
//! `SeedableRng` traits with `gen`, `gen_range`, and `fill`, and
//! `seq::SliceRandom::shuffle`. Streams are deterministic per seed, which
//! is all the experiments require; this is NOT a cryptographic RNG.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable "from the standard distribution" (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform sampling over a half-open span. The single blanket
/// `SampleRange` impl below is what lets integer-literal ranges infer their
/// type from the call site (`let i: usize = rng.gen_range(0..62)`), exactly
/// as real rand's `UniformSampler` machinery does.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)` when `inclusive` is false, else
    /// `[low, high]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t, inclusive: bool) -> $t {
                let span = (high as i128 - low as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range on empty range");
                let v = widening_mod(rng.next_u64(), span);
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: f64,
        high: f64,
        _inclusive: bool,
    ) -> f64 {
        assert!(low < high, "gen_range on empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// Ranges samplable by `gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start() <= self.end(), "gen_range on empty range");
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Lemire-style unbiased-enough reduction (widening multiply; the tiny
/// residual bias is irrelevant for workload generation).
fn widening_mod(x: u64, span: u128) -> u128 {
    (x as u128 * span) >> 64
}

/// The user-facing sampling API, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding recipe.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers (`shuffle` only).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(5..15);
            assert!((5..15).contains(&v));
            let w: u64 = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_is_nonzero_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
        let mut rng2 = StdRng::seed_from_u64(5);
        let mut buf2 = [0u8; 37];
        rng2.fill(&mut buf2[..]);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
