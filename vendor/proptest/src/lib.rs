//! Minimal, vendored stand-in for the `proptest` crate.
//!
//! Provides the subset the repository's property tests use: the
//! [`Strategy`] trait (`prop_map`, `prop_recursive`, ranges, tuples,
//! `Just`), `collection::vec`, `num::*::ANY`, `bool::ANY`, the
//! `proptest!` / `prop_oneof!` / `prop_assert*` macros and
//! [`ProptestConfig`]. Generation is deterministic (seeded from the test
//! name) and there is **no shrinking** — a failing case reports its case
//! number and panics with the underlying assertion message.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Runner configuration (subset: `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48, max_shrink_iters: 0 }
    }
}

/// The random source handed to strategies.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { rng: StdRng::seed_from_u64(seed) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    pub fn usize_in(&mut self, lo: usize, hi_exclusive: usize) -> usize {
        self.rng.gen_range(lo..hi_exclusive)
    }
}

/// A generator of random values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Build recursive strategies: `depth` rounds of wrapping the
    /// accumulated strategy via `recurse`, with a coin-flip fallback to the
    /// leaf at every level so generation terminates.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            let l = leaf.clone();
            strat = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.next_u64() & 1 == 0 {
                    l.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        strat
    }
}

/// Type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi_exclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Length range for collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub lo: usize,
    pub hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { lo: r.start, hi_exclusive: r.end.max(r.start + 1) }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_exclusive: n + 1 }
    }
}

macro_rules! num_any_mod {
    ($($m:ident : $t:ty),*) => {$(
        pub mod $m {
            /// Marker strategy producing any value of the type.
            #[derive(Clone, Copy, Debug)]
            pub struct Any;
            pub const ANY: Any = Any;

            impl super::Strategy for Any {
                type Value = $t;
                fn generate(&self, rng: &mut super::TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

/// Numeric `ANY` strategies (`proptest::num::u8::ANY`, …).
pub mod num {
    use super::{Strategy, TestRng};
    num_any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
                 i8: i8, i16: i16, i32: i32, i64: i64, isize: isize);
}

/// `proptest::bool::ANY`.
pub mod bool {
    #[derive(Clone, Copy, Debug)]
    pub struct Any;
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The test-defining macro. Each `#[test] fn name(arg in strategy, ...)`
/// becomes a standard test that runs `cases` random instantiations of the
/// body. Failures report the 0-based case index (generation is
/// deterministic per test name, so a failing case reproduces exactly).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || $body));
                if let Err(cause) = result {
                    eprintln!(
                        "proptest case {case}/{} failed in {}",
                        config.cases,
                        stringify!($name)
                    );
                    ::std::panic::resume_unwind(cause);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("t1");
        for _ in 0..200 {
            let v = (5u8..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let xs = crate::collection::vec(crate::num::u8::ANY, 2..6).generate(&mut rng);
            assert!((2..6).contains(&xs.len()));
        }
    }

    #[test]
    fn oneof_and_map() {
        let mut rng = crate::TestRng::deterministic("t2");
        let s = prop_oneof![Just(1u8), Just(2u8)].prop_map(|v| v * 10);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v == 10 || v == 20);
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let mut rng = crate::TestRng::deterministic("t3");
        let leaf = crate::num::u8::ANY.prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        for _ in 0..100 {
            let _ = strat.generate(&mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_roundtrip(xs in crate::collection::vec(crate::num::u16::ANY, 0..20), k in 1usize..5) {
            let doubled: Vec<u16> = xs.iter().map(|v| v.wrapping_mul(2)).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            prop_assert!((1..5).contains(&k));
        }
    }
}
