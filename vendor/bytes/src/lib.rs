//! Minimal, vendored stand-in for the `bytes` crate.
//!
//! The container this repository builds in has no network access to a cargo
//! registry, so the handful of external crates the codebase relies on are
//! vendored as small, API-compatible subsets. This one provides [`Bytes`]:
//! a cheaply cloneable, immutable byte buffer whose `clone` and `slice` are
//! reference-count bumps, which is the property the store and node codecs
//! depend on (pages are shared, never copied, after `put`).
//!
//! Only the API surface the workspace uses is implemented.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// `Static` avoids allocation for literals; `Shared` holds an `Arc`'d
/// allocation plus a window, so `slice()` never copies.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared { buf: Arc<[u8]>, off: usize, len: usize },
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes { repr: Repr::Static(&[]) }
    }

    /// Wrap a `'static` slice (no allocation).
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { repr: Repr::Static(bytes) }
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { repr: Repr::Shared { buf: Arc::from(data), off: 0, len: data.len() } }
    }

    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Static(s) => s.len(),
            Repr::Shared { len, .. } => *len,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-window of this buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds (mirrors `bytes::Bytes::slice`).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(start <= end, "slice start {start} > end {end}");
        assert!(end <= len, "slice end {end} out of bounds (len {len})");
        match &self.repr {
            Repr::Static(s) => Bytes { repr: Repr::Static(&s[start..end]) },
            Repr::Shared { buf, off, .. } => Bytes {
                repr: Repr::Shared { buf: Arc::clone(buf), off: off + start, len: end - start },
            },
        }
    }

    #[allow(clippy::should_implement_trait)] // also implemented as the trait; inherent copy avoids imports
    pub fn as_ref(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared { buf, off, len } => &buf[*off..*off + *len],
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { repr: Repr::Shared { off: 0, len: v.len(), buf: Arc::from(v) } }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        // Same backing allocation: pointer falls inside the parent's range.
        let parent = b.as_ref().as_ptr() as usize;
        let child = s.as_ref().as_ptr() as usize;
        assert_eq!(child, parent + 1);
    }

    #[test]
    fn slice_open_ranges() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.slice(..).as_ref(), &[1, 2, 3]);
        assert_eq!(b.slice(1..).as_ref(), &[2, 3]);
        assert_eq!(b.slice(..2).as_ref(), &[1, 2]);
        assert_eq!(b.slice(..=1).as_ref(), &[1, 2]);
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8]).slice(0..2);
    }

    #[test]
    fn equality_and_order() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
        assert!(Bytes::from_static(b"a") < Bytes::from_static(b"b"));
        assert_eq!(Bytes::from_static(b"xy"), *b"xy");
    }

    #[test]
    fn deref_gives_slice_methods() {
        let b = Bytes::from_static(b"hello world");
        assert!(b.starts_with(b"hello"));
        assert_eq!(b.get(0..5).unwrap(), b"hello");
        assert_eq!(b[6], b'w');
    }
}
