//! Minimal, vendored stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s non-poisoning API
//! (no `.unwrap()` at call sites). Lock poisoning is translated into a
//! panic-with-inner-data recovery: if a writer panicked, we still hand out
//! the guard, matching parking_lot semantics where locks are never poisoned.
//!
//! On top of the shim sits a **lock-order tracker** (the runtime half of the
//! `lock-order` lint rule, DESIGN.md §9): locks constructed with
//! [`Mutex::with_class`] / [`RwLock::with_class`] carry a [`LockClass`] with
//! a numeric order. When the tracker is active — debug builds with
//! `SIRI_LOCK_ORDER=1` — every blocking acquisition checks the per-thread
//! held stack and panics if a class with a *lower* order is acquired while
//! a higher-order guard is live (the definition of an inversion under the
//! documented total order). Acquisition edges are also recorded globally so
//! tests can inspect the observed graph. Unclassed locks and release builds
//! pay one predictable branch per operation.

use std::sync::{self, PoisonError};

pub mod lock_order {
    //! Lock classes, the per-thread held stack, and the inversion check.

    use std::cell::RefCell;
    use std::sync::{Mutex as StdMutex, OnceLock};

    /// A lock's position in the global acquisition order. Locks must be
    /// acquired in *ascending* `order`; acquiring a lower order while a
    /// higher one is held panics when the tracker is active. Same-order
    /// acquisitions are allowed (e.g. two branch slots during a merge) —
    /// intra-class ordering is the caller's contract.
    #[derive(Debug)]
    pub struct LockClass {
        pub order: u16,
        pub name: &'static str,
    }

    impl LockClass {
        pub const fn new(order: u16, name: &'static str) -> Self {
            LockClass { order, name }
        }
    }

    /// Tracker activation: debug builds only, and only when the
    /// `SIRI_LOCK_ORDER=1` env var opted in (checked once).
    pub fn is_active() -> bool {
        if !cfg!(debug_assertions) {
            return false;
        }
        static ACTIVE: OnceLock<bool> = OnceLock::new();
        *ACTIVE.get_or_init(|| std::env::var("SIRI_LOCK_ORDER").map(|v| v == "1").unwrap_or(false))
    }

    thread_local! {
        /// (order, name, acquisition id) for every live tracked guard on
        /// this thread. Guards can drop out of acquisition order, so each
        /// entry is keyed by a unique id rather than stack position.
        static HELD: RefCell<Vec<(u16, &'static str, u64)>> = const { RefCell::new(Vec::new()) };
    }

    /// A directed `(from, to)` acquisition: class `to` was acquired while
    /// `from` was the most recently taken held lock, as `(order, name)`.
    pub type Edge = ((u16, &'static str), (u16, &'static str));

    /// Distinct class edges observed across all threads, for test
    /// assertions and debugging. Ordered by first observation.
    pub fn edges() -> Vec<Edge> {
        edge_log().lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    fn edge_log() -> &'static StdMutex<Vec<Edge>> {
        static EDGES: OnceLock<StdMutex<Vec<Edge>>> = OnceLock::new();
        EDGES.get_or_init(|| StdMutex::new(Vec::new()))
    }

    /// RAII token: pops its acquisition from the held stack on drop. The
    /// inert form (unclassed lock, tracker off) is a no-op.
    #[derive(Debug)]
    pub struct Held(Option<u64>);

    impl Drop for Held {
        fn drop(&mut self) {
            if let Some(id) = self.0 {
                HELD.with(|h| {
                    let mut h = h.borrow_mut();
                    if let Some(pos) = h.iter().rposition(|&(_, _, i)| i == id) {
                        h.remove(pos);
                    }
                });
            }
        }
    }

    /// Record an acquisition of `class`, checking for an inversion first.
    /// `blocking` distinguishes `lock()`/`read()`/`write()` from
    /// `try_lock()`: a try-acquisition never blocks, so it cannot complete
    /// a deadlock cycle — it is recorded (later blocking acquisitions under
    /// it are still checked) but never panics itself.
    pub(crate) fn acquire(class: Option<&'static LockClass>, blocking: bool) -> Held {
        let Some(class) = class else { return Held(None) };
        if !is_active() {
            return Held(None);
        }
        let id = next_id();
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(&(top_order, top_name, _)) = h.last() {
                record_edge((top_order, top_name), (class.order, class.name));
            }
            if blocking {
                if let Some(&(o, n, _)) = h.iter().find(|&&(o, _, _)| o > class.order) {
                    panic!(
                        "lock-order violation: acquiring `{}` (order {}) while holding \
                         `{n}` (order {o}); locks must be taken in ascending order \
                         (DESIGN.md \u{a7}9). held: {:?}",
                        class.name,
                        class.order,
                        h.iter().map(|&(o, n, _)| (o, n)).collect::<Vec<_>>(),
                    );
                }
            }
            h.push((class.order, class.name, id));
        });
        Held(Some(id))
    }

    fn record_edge(from: (u16, &'static str), to: (u16, &'static str)) {
        let mut log = edge_log().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if !log.contains(&(from, to)) {
            log.push((from, to));
        }
    }

    fn next_id() -> u64 {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed)
    }
}

pub use lock_order::LockClass;

pub struct Mutex<T: ?Sized> {
    class: Option<&'static LockClass>,
    inner: sync::Mutex<T>,
}

/// Guard wrappers: deref to the std guards, and pop the lock-order held
/// stack on drop (field order releases the lock first, then the token).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
    _held: lock_order::Held,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    _held: lock_order::Held,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    _held: lock_order::Held,
}

macro_rules! impl_guard_deref {
    ($guard:ident, $($mut_impl:tt)*) => {
        impl<T: ?Sized> std::ops::Deref for $guard<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.inner
            }
        }
        $($mut_impl)*
    };
}

impl_guard_deref!(
    MutexGuard,
    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }
);
impl_guard_deref!(RwLockReadGuard,);
impl_guard_deref!(
    RwLockWriteGuard,
    impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }
);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { class: None, inner: sync::Mutex::new(value) }
    }

    /// A mutex participating in lock-order tracking under `class`.
    pub const fn with_class(value: T, class: &'static LockClass) -> Self {
        Mutex { class: Some(class), inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let held = lock_order::acquire(self.class, true);
        MutexGuard { inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner), _held: held }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        // Tracked after the fact: a try-lock cannot block, so it cannot
        // close a deadlock cycle — but what it holds must still be visible
        // to inversion checks on later blocking acquisitions.
        Some(MutexGuard { inner, _held: lock_order::acquire(self.class, false) })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized> {
    class: Option<&'static LockClass>,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { class: None, inner: sync::RwLock::new(value) }
    }

    /// An rwlock participating in lock-order tracking under `class`.
    pub const fn with_class(value: T, class: &'static LockClass) -> Self {
        RwLock { class: Some(class), inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let held = lock_order::acquire(self.class, true);
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            _held: held,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let held = lock_order::acquire(self.class, true);
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            _held: held,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn classed_locks_work_when_tracker_inactive() {
        // Without SIRI_LOCK_ORDER=1 the tracker must be fully inert even
        // for out-of-order acquisition.
        if lock_order::is_active() {
            return; // the inverted acquisition below would (rightly) panic
        }
        static LOW: LockClass = LockClass::new(1, "test.low");
        static HIGH: LockClass = LockClass::new(2, "test.high");
        let a = Mutex::with_class(0u32, &LOW);
        let b = RwLock::with_class(0u32, &HIGH);
        let gb = b.read();
        let ga = a.lock(); // inverted on purpose; inert tracker ignores it
        assert_eq!(*ga + *gb, 0);
    }
}
