//! Minimal, vendored stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s non-poisoning API
//! (no `.unwrap()` at call sites). Lock poisoning is translated into a
//! panic-with-inner-data recovery: if a writer panicked, we still hand out
//! the guard, matching parking_lot semantics where locks are never poisoned.

use std::sync::{self, PoisonError};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
