//! End-to-end page shipping with real indexes: replicate a POS-Tree
//! version to another site, update, ship the delta — the Figure 1
//! transmission-saving story over actual structures.

use std::sync::Arc;

use siri::workloads::YcsbConfig;
use siri::{ship, Entry, MemStore, NodeStore, PosParams, PosTree, SharedStore, SiriIndex};

#[test]
fn ship_pos_tree_version_and_delta() {
    let site_a = Arc::new(MemStore::new());
    let site_b = Arc::new(MemStore::new());
    let store_a: SharedStore = site_a.clone();
    let ycsb = YcsbConfig::default();

    let mut index = PosTree::new(store_a, PosParams::default());
    index.batch_insert(ycsb.dataset(3_000)).unwrap();
    let v1 = index.root();

    // Cold replication: everything crosses the wire.
    let children = siri::pos_tree::Node::children_of_page;
    let first = ship::ship_version(site_a.as_ref(), site_b.as_ref(), v1, children).unwrap();
    assert_eq!(first.pages_sent as usize, index.page_set().len());

    // The replica is fully usable at site B.
    let store_b: SharedStore = site_b.clone();
    let replica = PosTree::open(store_b.clone(), PosParams::default(), v1);
    assert_eq!(replica.len().unwrap(), 3_000);
    assert_eq!(replica.get(&ycsb.key(99)).unwrap().unwrap(), ycsb.value(99, 0));

    // Update at site A, ship only the delta.
    let updates: Vec<Entry> = (0..50u64).map(|i| ycsb.entry(i * 31 % 3_000, 1)).collect();
    index.batch_insert(updates).unwrap();
    let v2 = index.root();
    let delta = ship::ship_version(site_a.as_ref(), site_b.as_ref(), v2, children).unwrap();

    assert!(
        delta.pages_sent < first.pages_sent / 3,
        "delta ship ({} pages) must be far smaller than cold ship ({} pages)",
        delta.pages_sent,
        first.pages_sent
    );
    assert!(delta.subtrees_skipped > 0, "shared subtrees must be pruned");

    // Site B can read both versions now.
    let replica_v2 = PosTree::open(store_b, PosParams::default(), v2);
    assert_eq!(replica_v2.get(&ycsb.key(31)).unwrap().unwrap(), ycsb.value(31, 1));
    assert_eq!(replica.get(&ycsb.key(31)).unwrap().unwrap(), ycsb.value(31, 0));

    // Re-shipping v2 is free.
    let again = ship::ship_version(site_a.as_ref(), site_b.as_ref(), v2, children).unwrap();
    assert_eq!(again.pages_sent, 0);
}

#[test]
fn shipped_proofs_verify_at_the_receiver() {
    let site_a = Arc::new(MemStore::new());
    let site_b = Arc::new(MemStore::new());
    let ycsb = YcsbConfig::default();
    let mut index = PosTree::new(site_a.clone() as SharedStore, PosParams::default());
    index.batch_insert(ycsb.dataset(500)).unwrap();
    let root = index.root();
    ship::ship_version(
        site_a.as_ref(),
        site_b.as_ref(),
        root,
        siri::pos_tree::Node::children_of_page,
    )
    .unwrap();
    let replica = PosTree::open(site_b.clone() as SharedStore, PosParams::default(), root);
    let proof = replica.prove(&ycsb.key(123)).unwrap();
    assert!(PosTree::verify_proof(root, &ycsb.key(123), &proof).is_valid());
    assert_eq!(site_b.stats().unique_pages, site_a.stats().unique_pages);
}
