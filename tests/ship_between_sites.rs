//! End-to-end page shipping with real indexes: replicate a POS-Tree
//! version to another site, update, ship the delta — the Figure 1
//! transmission-saving story over actual structures.

use std::sync::Arc;

use siri::workloads::YcsbConfig;
use siri::{ship, Entry, MemStore, NodeStore, PosParams, PosTree, SharedStore, SiriIndex};

#[test]
fn ship_pos_tree_version_and_delta() {
    let site_a = Arc::new(MemStore::new());
    let site_b = Arc::new(MemStore::new());
    let store_a: SharedStore = site_a.clone();
    let ycsb = YcsbConfig::default();

    let mut index = PosTree::new(store_a, PosParams::default());
    index.batch_insert(ycsb.dataset(3_000)).unwrap();
    let v1 = index.root();

    // Cold replication: everything crosses the wire.
    let children = siri::pos_tree::Node::children_of_page;
    let first = ship::ship_version(site_a.as_ref(), site_b.as_ref(), v1, children).unwrap();
    assert_eq!(first.pages_sent as usize, index.page_set().len());

    // The replica is fully usable at site B.
    let store_b: SharedStore = site_b.clone();
    let replica = PosTree::open(store_b.clone(), PosParams::default(), v1);
    assert_eq!(replica.len().unwrap(), 3_000);
    assert_eq!(replica.get(&ycsb.key(99)).unwrap().unwrap(), ycsb.value(99, 0));

    // Update at site A, ship only the delta.
    let updates: Vec<Entry> = (0..50u64).map(|i| ycsb.entry(i * 31 % 3_000, 1)).collect();
    index.batch_insert(updates).unwrap();
    let v2 = index.root();
    let delta = ship::ship_version(site_a.as_ref(), site_b.as_ref(), v2, children).unwrap();

    assert!(
        delta.pages_sent < first.pages_sent / 3,
        "delta ship ({} pages) must be far smaller than cold ship ({} pages)",
        delta.pages_sent,
        first.pages_sent
    );
    assert!(delta.subtrees_skipped > 0, "shared subtrees must be pruned");

    // Site B can read both versions now.
    let replica_v2 = PosTree::open(store_b, PosParams::default(), v2);
    assert_eq!(replica_v2.get(&ycsb.key(31)).unwrap().unwrap(), ycsb.value(31, 1));
    assert_eq!(replica.get(&ycsb.key(31)).unwrap().unwrap(), ycsb.value(31, 0));

    // Re-shipping v2 is free.
    let again = ship::ship_version(site_a.as_ref(), site_b.as_ref(), v2, children).unwrap();
    assert_eq!(again.pages_sent, 0);
}

/// The generalized transport: receiver-driven `sync_pull` between two
/// sites, exercising the Merkle anti-entropy properties the wire stack
/// relies on — batched round trips, a small-delta byte bound, and resuming
/// after a mid-sync disconnect without re-publishing a half-landed root.
#[test]
fn incremental_anti_entropy_ships_small_deltas_and_resumes() {
    let site_a = Arc::new(MemStore::new());
    let site_b = Arc::new(MemStore::new());
    let children = siri::pos_tree::Node::children_of_page;

    let mut index = PosTree::new(site_a.clone() as SharedStore, PosParams::default());
    let dataset: Vec<Entry> = (0..3_000u32)
        .map(|i| Entry {
            key: format!("key{i:05}").into_bytes().into(),
            value: format!("value-{i}-r0").into_bytes().into(),
        })
        .collect();
    index.batch_insert(dataset).unwrap();
    let v1 = index.root();

    let mut fetch = |hashes: &[siri::Hash]| {
        hashes.iter().map(|h| site_a.try_get(h)).collect::<Result<Vec<_>, _>>()
    };

    // Cold sync pulls the full version, batched.
    let opts = ship::SyncOptions::default();
    let cold = ship::sync_pull(&mut fetch, site_b.as_ref(), v1, children, &opts).unwrap();
    assert!(cold.complete);
    assert_eq!(cold.pages_fetched as usize, index.page_set().len());
    assert!(cold.round_trips < cold.pages_fetched, "fetches must batch");
    assert!(site_b.contains(&v1));

    // Mutate 1% of the records — a contiguous run, so the rewrite stays
    // confined to a few leaf pages plus the spine above them.
    let updates: Vec<Entry> = (60..90u32)
        .map(|i| Entry {
            key: format!("key{i:05}").into_bytes().into(),
            value: format!("value-{i}-r1").into_bytes().into(),
        })
        .collect();
    index.batch_insert(updates).unwrap();
    let v2 = index.root();

    // Disconnect after one page: nothing may land (child-before-parent
    // ordering holds the fetched root back until its subtree is present),
    // so a later walk cannot mistake the half-synced version for complete.
    let cut = ship::SyncOptions { max_pages: Some(1), ..ship::SyncOptions::default() };
    let first = ship::sync_pull(&mut fetch, site_b.as_ref(), v2, children, &cut).unwrap();
    assert!(!first.complete);
    assert!(!site_b.contains(&v2), "an unfinished sync must not publish the new root");

    // The resumed sync prunes every already-complete subtree and finishes.
    let rest = ship::sync_pull(&mut fetch, site_b.as_ref(), v2, children, &opts).unwrap();
    assert!(rest.complete);
    assert!(rest.subtrees_skipped > 0, "shared subtrees must be pruned");
    assert!(site_b.contains(&v2));

    // Acceptance gate: the 1% delta (disconnect overhead included) costs
    // under 10% of the cold transfer.
    let delta_bytes = first.bytes_fetched + rest.bytes_fetched;
    assert!(
        delta_bytes < cold.bytes_fetched / 10,
        "1% delta must ship <10% of a cold sync ({delta_bytes} B vs {} B)",
        cold.bytes_fetched
    );

    // Both versions read back at site B; a re-sync costs one probe.
    let replica = PosTree::open(site_b.clone() as SharedStore, PosParams::default(), v2);
    assert_eq!(replica.get(b"key00071").unwrap().unwrap().as_ref(), b"value-71-r1".as_ref());
    let old = PosTree::open(site_b.clone() as SharedStore, PosParams::default(), v1);
    assert_eq!(old.get(b"key00071").unwrap().unwrap().as_ref(), b"value-71-r0".as_ref());
    let again = ship::sync_pull(&mut fetch, site_b.as_ref(), v2, children, &opts).unwrap();
    assert_eq!(again.pages_fetched, 0);
    assert_eq!(again.subtrees_skipped, 1);
}

#[test]
fn shipped_proofs_verify_at_the_receiver() {
    let site_a = Arc::new(MemStore::new());
    let site_b = Arc::new(MemStore::new());
    let ycsb = YcsbConfig::default();
    let mut index = PosTree::new(site_a.clone() as SharedStore, PosParams::default());
    index.batch_insert(ycsb.dataset(500)).unwrap();
    let root = index.root();
    ship::ship_version(
        site_a.as_ref(),
        site_b.as_ref(),
        root,
        siri::pos_tree::Node::children_of_page,
    )
    .unwrap();
    let replica = PosTree::open(site_b.clone() as SharedStore, PosParams::default(), root);
    let proof = replica.prove(&ycsb.key(123)).unwrap();
    assert!(PosTree::verify_proof(root, &ycsb.key(123), &proof).is_valid());
    assert_eq!(site_b.stats().unique_pages, site_a.stats().unique_pages);
}
