//! Property tests for the wire protocol codec (`siri::proto`): random
//! messages round-trip exactly through encode/decode; random bytes and
//! every truncation of a valid payload are rejected with a clean error —
//! never a panic, never an unbounded allocation; framing validates the
//! length prefix before reading a payload.

use bytes::Bytes;
use proptest::prelude::*;
use siri::proto::{
    read_frame, write_frame, Request, Response, WireBound, WireError, MAX_FRAME_BYTES,
};
use siri::{BatchOp, CommitInfo, Entry, Hash, ShardCommit};

fn arb_bytes(max: usize) -> BoxedStrategy<Bytes> {
    proptest::collection::vec(proptest::num::u8::ANY, 0..max).prop_map(Bytes::from).boxed()
}

fn arb_name() -> BoxedStrategy<String> {
    proptest::collection::vec(97u8..123, 1..12)
        .prop_map(|v| String::from_utf8_lossy(&v).into_owned())
        .boxed()
}

fn arb_hash() -> BoxedStrategy<Hash> {
    proptest::collection::vec(proptest::num::u8::ANY, 1..32)
        .prop_map(|v| siri::crypto::sha256(&v))
        .boxed()
}

fn arb_opt_bytes() -> BoxedStrategy<Option<Bytes>> {
    prop_oneof![Just(None), arb_bytes(12).prop_map(Some)].boxed()
}

fn arb_bound() -> BoxedStrategy<WireBound> {
    prop_oneof![
        Just(WireBound::Unbounded),
        arb_bytes(8).prop_map(WireBound::Included),
        arb_bytes(8).prop_map(WireBound::Excluded),
    ]
    .boxed()
}

fn arb_request() -> BoxedStrategy<Request> {
    let op = (arb_bytes(12), arb_opt_bytes()).prop_map(|(key, value)| BatchOp { key, value });
    prop_oneof![
        (0u8..255).prop_map(|version| Request::Hello { version }),
        (arb_name(), proptest::collection::vec(op, 0..8))
            .prop_map(|(branch, ops)| Request::Commit { branch, ops }),
        (arb_name(), arb_bytes(12)).prop_map(|(branch, key)| Request::Get { branch, key }),
        ((arb_name(), arb_bound(), arb_bound()), (arb_opt_bytes(), 0u32..4096)).prop_map(
            |((branch, start, end), (after, limit))| Request::Range {
                branch,
                start,
                end,
                after,
                limit
            }
        ),
        Just(Request::Branches),
        (arb_name(), arb_name()).prop_map(|(from, to)| Request::Fork { from, to }),
        arb_name().prop_map(|branch| Request::DeleteBranch { branch }),
        arb_name().prop_map(|branch| Request::BranchDigest { branch }),
        (arb_name(), arb_bytes(12)).prop_map(|(branch, key)| Request::Prove { branch, key }),
        (arb_name(), arb_bound(), arb_bound())
            .prop_map(|(branch, start, end)| Request::ProveRange { branch, start, end }),
        (arb_name(), proptest::collection::vec(arb_bytes(12), 0..6))
            .prop_map(|(branch, keys)| Request::ProveBatch { branch, keys }),
        Just(Request::Stats),
        proptest::collection::vec(arb_hash(), 0..6).prop_map(|hashes| Request::Fetch { hashes }),
        Just(Request::Shutdown),
    ]
    .boxed()
}

fn arb_commit_info() -> BoxedStrategy<CommitInfo> {
    let shard = (0usize..16, arb_hash(), arb_hash())
        .prop_map(|(shard, parent, root)| ShardCommit { shard, parent, root });
    (arb_hash(), arb_hash(), 0u32..8, proptest::collection::vec(shard, 0..4))
        .prop_map(|(parent, root, retries, shards)| CommitInfo { parent, root, retries, shards })
        .boxed()
}

fn arb_response() -> BoxedStrategy<Response> {
    let entry = (arb_bytes(12), arb_bytes(12)).prop_map(|(k, v)| Entry { key: k, value: v });
    prop_oneof![
        (0u8..255).prop_map(|version| Response::Hello { version }),
        arb_commit_info().prop_map(Response::Committed),
        arb_opt_bytes().prop_map(Response::Value),
        (proptest::collection::vec(entry, 0..8), proptest::bool::ANY)
            .prop_map(|(entries, done)| Response::Page { entries, done }),
        proptest::collection::vec(arb_name(), 0..6).prop_map(Response::Branches),
        Just(Response::Ok),
        arb_hash().prop_map(Response::Digest),
        (arb_hash(), proptest::collection::vec(arb_bytes(24), 0..5))
            .prop_map(|(root, pages)| Response::Proof { root, pages }),
        proptest::collection::vec(arb_opt_bytes(), 0..6).prop_map(Response::Pages),
        ((0u64..8, 0u64..8), arb_name())
            .prop_map(|((code, aux), message)| Response::Err(WireError { code, aux, message })),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn requests_round_trip(req in arb_request()) {
        let wire = req.encode();
        prop_assert_eq!(Request::decode(&wire), Ok(req));
    }

    #[test]
    fn responses_round_trip(resp in arb_response()) {
        let wire = resp.encode();
        prop_assert_eq!(Response::decode(&wire), Ok(resp));
    }

    #[test]
    fn every_truncation_is_rejected_cleanly(req in arb_request()) {
        // Dropping any suffix of a valid payload must yield a decode
        // error, never a panic and never a shorter-but-valid message
        // (every count is written before its items, so missing bytes are
        // always detected).
        let wire = req.encode();
        for cut in 0..wire.len() {
            prop_assert!(Request::decode(&wire[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn every_response_truncation_is_rejected_cleanly(resp in arb_response()) {
        let wire = resp.encode();
        for cut in 0..wire.len() {
            prop_assert!(Response::decode(&wire[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn garbage_bytes_never_panic_the_decoders(
        data in proptest::collection::vec(proptest::num::u8::ANY, 0..96)
    ) {
        // Totality: arbitrary input produces Ok or a CodecError — the
        // proptest harness turns any panic into a test failure.
        let _ = Request::decode(&data);
        let _ = Response::decode(&data);
    }

    #[test]
    fn garbage_streams_never_panic_the_framer(
        data in proptest::collection::vec(proptest::num::u8::ANY, 0..64)
    ) {
        let mut slice: &[u8] = &data;
        let _ = read_frame(&mut slice, 1 << 16);
    }

    #[test]
    fn frames_round_trip(payload in proptest::collection::vec(proptest::num::u8::ANY, 1..512)) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut slice: &[u8] = &wire;
        prop_assert_eq!(read_frame(&mut slice, MAX_FRAME_BYTES).unwrap(), payload);
        prop_assert!(slice.is_empty(), "frame must consume exactly its length");
    }
}

#[test]
fn zero_and_oversized_lengths_are_rejected_before_allocation() {
    let mut zero: &[u8] = &[0, 0, 0, 0];
    assert_eq!(read_frame(&mut zero, 1024).unwrap_err().kind(), std::io::ErrorKind::InvalidData);
    // Advertises 4 GiB; must fail on the prefix alone, not try to read it.
    let mut huge: &[u8] = &[0xff, 0xff, 0xff, 0xff];
    assert_eq!(read_frame(&mut huge, 1024).unwrap_err().kind(), std::io::ErrorKind::InvalidData);
    // One past the cap is rejected, the cap itself is allowed.
    let mut edge: &[u8] = &[0, 0, 4, 1];
    assert!(read_frame(&mut edge, 1024).is_err());
}

#[test]
fn short_frame_body_is_unexpected_eof() {
    let mut wire = Vec::new();
    write_frame(&mut wire, b"hello").unwrap();
    wire.truncate(wire.len() - 2);
    let mut slice: &[u8] = &wire;
    assert_eq!(read_frame(&mut slice, 1024).unwrap_err().kind(), std::io::ErrorKind::UnexpectedEof);
}
