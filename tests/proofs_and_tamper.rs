//! Tamper evidence across all structures: proofs verify, forgeries fail,
//! and corrupted stores are caught by verification (failure injection).

use std::sync::Arc;

use siri::workloads::YcsbConfig;
use siri::{
    Entry, MemStore, MerkleBucketTree, MerklePatriciaTrie, MvmbParams, MvmbTree, PosParams,
    PosTree, ProofVerdict, SharedStore, SiriIndex,
};

fn dataset(n: usize) -> Vec<Entry> {
    YcsbConfig::default().dataset(n)
}

macro_rules! proof_suite {
    ($name:ident, $ty:ty, $make:expr) => {
        #[test]
        fn $name() {
            let mem = Arc::new(MemStore::new());
            let store: SharedStore = mem.clone();
            let make: fn(SharedStore) -> $ty = $make;
            let mut idx = make(store);
            let entries = dataset(1_500);
            idx.batch_insert(entries.clone()).unwrap();
            let root = idx.root();
            let ycsb = YcsbConfig::default();

            // Present keys verify to the right value.
            for i in (0..1_500u64).step_by(333) {
                let key = ycsb.key(i);
                let proof = idx.prove(&key).unwrap();
                match <$ty>::verify_proof(root, &key, &proof) {
                    ProofVerdict::Present(v) => {
                        assert_eq!(v, idx.get(&key).unwrap().unwrap(), "key {i}")
                    }
                    other => panic!("expected Present for key {i}, got {other:?}"),
                }
            }

            // Absent keys verify as absent — never as present.
            let absent = b"absolutely-not-a-key";
            let proof = idx.prove(absent).unwrap();
            assert_eq!(<$ty>::verify_proof(root, absent, &proof), ProofVerdict::Absent);

            // Any single-bit flip anywhere in the proof is caught.
            let key = ycsb.key(777);
            let good = idx.prove(&key).unwrap();
            for page in 0..good.len() {
                for bit in [0usize, 9, 100] {
                    let mut bad = good.clone();
                    bad.tamper(page, bit);
                    if bad == good {
                        continue; // tamper hit an identical bit pattern
                    }
                    assert!(
                        !<$ty>::verify_proof(root, &key, &bad).is_valid(),
                        "tampered page {page} bit {bit} accepted"
                    );
                }
            }

            // Proofs do not transfer across versions.
            let mut v2 = idx.clone();
            v2.insert(&key, bytes::Bytes::from_static(b"rewritten")).unwrap();
            assert!(<$ty>::verify_proof(v2.root(), &key, &good).value().is_none());

            // Failure injection: corrupt the root page in the store; a
            // freshly generated proof no longer verifies against the
            // trusted digest.
            assert!(mem.corrupt_page(&root, 42));
            match idx.prove(&key) {
                Ok(proof) => {
                    assert!(!<$ty>::verify_proof(root, &key, &proof).is_valid());
                }
                Err(_) => {} // decode failure is also a detection
            }
        }
    };
}

proof_suite!(pos_tree_proofs, PosTree, |s| PosTree::new(s, PosParams::default()));
proof_suite!(mpt_proofs, MerklePatriciaTrie, |s| MerklePatriciaTrie::new(s));
proof_suite!(mbt_proofs, MerkleBucketTree, |s| MerkleBucketTree::new(s, 128, 8).unwrap());
proof_suite!(mvmb_proofs, MvmbTree, |s| MvmbTree::new(s, MvmbParams::default()));

#[test]
fn digests_bind_the_entire_content() {
    // Two indexes differing in one byte anywhere must differ in root.
    let entries = dataset(500);
    let mut a = PosTree::new(MemStore::new_shared(), PosParams::default());
    a.batch_insert(entries.clone()).unwrap();
    let mut tweaked = entries;
    let mut v = tweaked[250].value.to_vec();
    v[0] ^= 1;
    tweaked[250].value = bytes::Bytes::from(v);
    let mut b = PosTree::new(MemStore::new_shared(), PosParams::default());
    b.batch_insert(tweaked).unwrap();
    assert_ne!(a.root(), b.root());
}
