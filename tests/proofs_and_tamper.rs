//! Tamper evidence across all structures: proofs verify, forgeries fail,
//! and corrupted stores are caught by verification (failure injection).

use std::sync::Arc;

use siri::workloads::YcsbConfig;
use siri::{
    Entry, MemStore, MerkleBucketTree, MerklePatriciaTrie, MvmbParams, MvmbTree, PosParams,
    PosTree, ProofVerdict, SharedStore, SiriIndex,
};

fn dataset(n: usize) -> Vec<Entry> {
    YcsbConfig::default().dataset(n)
}

macro_rules! proof_suite {
    ($name:ident, $ty:ty, $make:expr) => {
        #[test]
        fn $name() {
            let mem = Arc::new(MemStore::new());
            let store: SharedStore = mem.clone();
            let make: fn(SharedStore) -> $ty = $make;
            let mut idx = make(store);
            let entries = dataset(1_500);
            idx.batch_insert(entries.clone()).unwrap();
            let root = idx.root();
            let ycsb = YcsbConfig::default();

            // Present keys verify to the right value.
            for i in (0..1_500u64).step_by(333) {
                let key = ycsb.key(i);
                let proof = idx.prove(&key).unwrap();
                match <$ty>::verify_proof(root, &key, &proof) {
                    ProofVerdict::Present(v) => {
                        assert_eq!(v, idx.get(&key).unwrap().unwrap(), "key {i}")
                    }
                    other => panic!("expected Present for key {i}, got {other:?}"),
                }
            }

            // Absent keys verify as absent — never as present.
            let absent = b"absolutely-not-a-key";
            let proof = idx.prove(absent).unwrap();
            assert_eq!(<$ty>::verify_proof(root, absent, &proof), ProofVerdict::Absent);

            // Any single-bit flip anywhere in the proof is caught.
            let key = ycsb.key(777);
            let good = idx.prove(&key).unwrap();
            for page in 0..good.len() {
                for bit in [0usize, 9, 100] {
                    let mut bad = good.clone();
                    bad.tamper(page, bit);
                    if bad == good {
                        continue; // tamper hit an identical bit pattern
                    }
                    assert!(
                        !<$ty>::verify_proof(root, &key, &bad).is_valid(),
                        "tampered page {page} bit {bit} accepted"
                    );
                }
            }

            // Proofs do not transfer across versions.
            let mut v2 = idx.clone();
            v2.insert(&key, bytes::Bytes::from_static(b"rewritten")).unwrap();
            assert!(<$ty>::verify_proof(v2.root(), &key, &good).value().is_none());

            // Failure injection: corrupt the root page in the store; a
            // freshly generated proof no longer verifies against the
            // trusted digest.
            assert!(mem.corrupt_page(&root, 42));
            match idx.prove(&key) {
                Ok(proof) => {
                    assert!(!<$ty>::verify_proof(root, &key, &proof).is_valid());
                }
                Err(_) => {} // decode failure is also a detection
            }
        }
    };
}

proof_suite!(pos_tree_proofs, PosTree, |s| PosTree::new(s, PosParams::default()));
proof_suite!(mpt_proofs, MerklePatriciaTrie, |s| MerklePatriciaTrie::new(s));
proof_suite!(mbt_proofs, MerkleBucketTree, |s| MerkleBucketTree::new(s, 128, 8).unwrap());
proof_suite!(mvmb_proofs, MvmbTree, |s| MvmbTree::new(s, MvmbParams::default()));

/// Regression (ISSUE 10 headline): on a sharded branch, `Session::prove`
/// used to anchor at the *collapsed* logical root, which differs from
/// `branch_digest()` — the manifest digest that is the only hash a light
/// client holds (for MVMB+ the collapsed root is not even derivable from
/// the shard sub-roots). Proofs must anchor at the published digest.
#[test]
fn sharded_branch_proofs_anchor_at_branch_digest() {
    use siri::{
        Forkbase, MbtFactory, MptFactory, MvmbFactory, PosFactory, Session, ShardingPolicy,
        WriteBatch,
    };

    fn check<F: siri::IndexFactory>(factory: F) {
        let scheme = factory.scheme();
        let engine =
            Forkbase::with_sharding(factory, MemStore::new_shared(), ShardingPolicy::pinned(4), 0);
        let mut batch = WriteBatch::new();
        for i in (0u16..=255).step_by(3) {
            let key = vec![i as u8, (i / 3) as u8];
            batch.put(key.clone(), format!("v{i}").into_bytes());
        }
        Session::commit(&engine, "master", batch).unwrap();
        assert_eq!(engine.shard_count("master").unwrap(), 4, "branch must actually shard");
        let digest = Session::branch_digest(&engine, "master").unwrap();

        let key = [99u8, 33];
        let (root, proof) = Session::prove(&engine, "master", &key).unwrap();
        assert_eq!(
            root, digest,
            "prove must anchor at the published branch digest, not the collapsed root"
        );
        assert!(
            proof.root_page_matches(digest),
            "first proof page must hash to the branch digest (the shard manifest)"
        );

        // And the anchored verifier accepts it end-to-end: membership …
        match siri::verify_anchored_membership(scheme, digest, &key, &proof) {
            ProofVerdict::Present(v) => assert_eq!(v.as_ref(), b"v99"),
            other => {
                panic!("{}: expected Present over the manifest, got {other:?}", scheme.structure())
            }
        }
        // … non-membership …
        let (_, absent) = Session::prove(&engine, "master", b"no-such-key").unwrap();
        assert_eq!(
            siri::verify_anchored_membership(scheme, digest, b"no-such-key", &absent),
            ProofVerdict::Absent,
            "{}: non-membership over the manifest",
            scheme.structure()
        );
        // … a cross-shard range (spans all four sub-roots) …
        use std::ops::Bound;
        let (rr, range) =
            Session::prove_range(&engine, "master", Bound::Unbounded, Bound::Unbounded).unwrap();
        assert_eq!(rr, digest);
        let verdict =
            siri::verify_anchored_range(scheme, digest, Bound::Unbounded, Bound::Unbounded, &range);
        let entries = verdict
            .entries()
            .unwrap_or_else(|| panic!("{}: range proof rejected: {verdict:?}", scheme.structure()));
        assert_eq!(entries.len(), 86, "{}: full scan entry count", scheme.structure());
        // … and a batch that routes to several shards.
        let keys: Vec<siri::Bytes> = [[3u8, 1], [99, 33], [201, 67], [7, 7]]
            .iter()
            .map(|k| siri::Bytes::copy_from_slice(k))
            .collect();
        let (br, batch_proof) = Session::prove_batch(&engine, "master", &keys).unwrap();
        assert_eq!(br, digest);
        match siri::verify_anchored_batch(scheme, digest, &keys, &batch_proof) {
            siri::BatchVerdict::Verified(vs) => {
                assert!(matches!(vs[0], ProofVerdict::Present(_)));
                assert!(matches!(vs[1], ProofVerdict::Present(_)));
                assert!(matches!(vs[2], ProofVerdict::Present(_)));
                assert_eq!(vs[3], ProofVerdict::Absent);
            }
            other => panic!("{}: batch proof rejected: {other:?}", scheme.structure()),
        }
    }

    check(PosFactory(PosParams::default()));
    check(MptFactory);
    check(MbtFactory { buckets: 64, fanout: 4 });
    check(MvmbFactory(MvmbParams::default()));
}

/// Tamper matrix: {membership, non-membership, range, batched} × all four
/// structures, proven over a sharded branch and verified through the
/// anchored path. Runs over [`siri::env_store`], so the CI file-store leg
/// exercises the same matrix against the durable backend. Every proof
/// page participates in verification (`PagePool::all_used`), so a single
/// flipped bit anywhere — manifest page included — must be fatal.
#[test]
fn anchored_tamper_matrix_rejects_every_bit_flip() {
    use std::ops::Bound;

    use siri::{
        env_store, Forkbase, MbtFactory, MptFactory, MvmbFactory, PosFactory, Proof, Session,
        ShardingPolicy, WriteBatch,
    };

    fn check<F: siri::IndexFactory>(factory: F) {
        let scheme = factory.scheme();
        let engine = Forkbase::with_sharding(factory, env_store(), ShardingPolicy::pinned(4), 0);
        let mut batch = WriteBatch::new();
        for i in (0u16..=255).step_by(5) {
            batch.put(vec![i as u8, 7], format!("val{i}").into_bytes());
        }
        Session::commit(&engine, "master", batch).unwrap();
        let digest = Session::branch_digest(&engine, "master").unwrap();

        let present = [120u8, 7];
        let batch_keys: Vec<siri::Bytes> = [[10u8, 7], [120, 7], [255, 255]]
            .iter()
            .map(|k| siri::Bytes::copy_from_slice(k))
            .collect();
        let (_, membership) = Session::prove(&engine, "master", &present).unwrap();
        let (_, non_membership) = Session::prove(&engine, "master", b"no-such-key").unwrap();
        let (_, range) = Session::prove_range(
            &engine,
            "master",
            Bound::Included(&[50u8][..]),
            Bound::Excluded(&[200u8][..]),
        )
        .unwrap();
        let (_, batched) = Session::prove_batch(&engine, "master", &batch_keys).unwrap();

        type Valid<'a> = Box<dyn Fn(&Proof) -> bool + 'a>;
        let keys = &batch_keys;
        let cases: Vec<(&str, Proof, Valid)> = vec![
            (
                "membership",
                membership,
                Box::new(move |p| {
                    siri::verify_anchored_membership(scheme, digest, &present, p).is_valid()
                }),
            ),
            (
                "non-membership",
                non_membership,
                Box::new(move |p| {
                    siri::verify_anchored_membership(scheme, digest, b"no-such-key", p).is_valid()
                }),
            ),
            (
                "range",
                range,
                Box::new(move |p| {
                    siri::verify_anchored_range(
                        scheme,
                        digest,
                        Bound::Included(&[50u8][..]),
                        Bound::Excluded(&[200u8][..]),
                        p,
                    )
                    .is_valid()
                }),
            ),
            (
                "batched",
                batched,
                Box::new(move |p| siri::verify_anchored_batch(scheme, digest, keys, p).is_valid()),
            ),
        ];

        for (label, good, valid) in &cases {
            assert!(valid(good), "{}: untampered {label} proof must verify", scheme.structure());
            for page in 0..good.len() {
                for bit in [0usize, 9, 100] {
                    let mut bad = good.clone();
                    bad.tamper(page, bit);
                    if bad == *good {
                        continue; // tamper hit an identical bit pattern
                    }
                    assert!(
                        !valid(&bad),
                        "{}: tampered {label} proof (page {page}, bit {bit}) accepted",
                        scheme.structure()
                    );
                }
            }
        }
    }

    check(PosFactory(PosParams::default()));
    check(MptFactory);
    check(MbtFactory { buckets: 16, fanout: 4 });
    check(MvmbFactory(MvmbParams::default()));
}

#[test]
fn digests_bind_the_entire_content() {
    // Two indexes differing in one byte anywhere must differ in root.
    let entries = dataset(500);
    let mut a = PosTree::new(MemStore::new_shared(), PosParams::default());
    a.batch_insert(entries.clone()).unwrap();
    let mut tweaked = entries;
    let mut v = tweaked[250].value.to_vec();
    v[0] ^= 1;
    tweaked[250].value = bytes::Bytes::from(v);
    let mut b = PosTree::new(MemStore::new_shared(), PosParams::default());
    b.batch_insert(tweaked).unwrap();
    assert_ne!(a.root(), b.root());
}
