//! Loopback integration tests for the wire stack: a real `siri-server`
//! on 127.0.0.1, real `RemoteSession` clients, real TCP in between.
//!
//! Covers the PR's acceptance gates: concurrent clients on disjoint
//! branches replay to the exact digests the in-process engine produces;
//! paged cursors stream faithfully at tiny page sizes; remote proofs
//! verify offline; Merkle anti-entropy ships a small delta cheaply and
//! resumes after a mid-sync disconnect; backpressure and shutdown behave.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use siri::{
    serve, ClientOptions, Forkbase, Hash, IndexError, MemStore, NodeStore, PosFactory, PosParams,
    RemoteSession, ServerHandle, ServerOptions, Session, SyncOptions, WriteBatch,
};

fn engine() -> Arc<Forkbase<PosFactory>> {
    Arc::new(Forkbase::with_store(PosFactory(PosParams::default()), MemStore::new_shared(), 0))
}

fn loopback(opts: ServerOptions) -> (Arc<Forkbase<PosFactory>>, ServerHandle<PosFactory>) {
    let engine = engine();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve(engine.clone(), listener, opts, None).unwrap();
    (engine, handle)
}

fn batch_for(worker: usize, round: usize) -> WriteBatch {
    let mut b = WriteBatch::new();
    for i in 0..20 {
        b.put(
            format!("w{worker}-key{round:02}-{i:03}").into_bytes(),
            format!("value-{worker}-{round}-{i}").into_bytes(),
        );
    }
    b
}

#[test]
fn concurrent_clients_on_disjoint_branches_match_in_process_replay() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 4;
    let (served, handle) = loopback(ServerOptions::default());
    let addr = handle.addr();

    // Eight clients, each on its own connection and its own branch.
    std::thread::scope(|scope| {
        for w in 0..CLIENTS {
            scope.spawn(move || {
                let session = RemoteSession::connect(addr).unwrap();
                let branch = format!("writer-{w}");
                session.fork("master", &branch).unwrap();
                for r in 0..ROUNDS {
                    session.commit(&branch, batch_for(w, r)).unwrap();
                }
            });
        }
    });

    // Replay the same work single-threaded on a fresh in-process engine:
    // every branch digest must agree bit-for-bit (structural invariance
    // across transports and schedules).
    let replay = engine();
    for w in 0..CLIENTS {
        let branch = format!("writer-{w}");
        Session::fork(replay.as_ref(), "master", &branch).unwrap();
        for r in 0..ROUNDS {
            Session::commit(replay.as_ref(), &branch, batch_for(w, r)).unwrap();
        }
    }
    for w in 0..CLIENTS {
        let branch = format!("writer-{w}");
        assert_eq!(
            served.branch_digest(&branch).unwrap(),
            Session::branch_digest(replay.as_ref(), &branch).unwrap(),
            "{branch} diverged from the in-process replay"
        );
    }

    // The server saw all the traffic and every connection retired cleanly.
    let stats = handle.stats();
    assert_eq!(stats.accepted, CLIENTS as u64);
    assert_eq!(stats.rejected, 0);
    assert!(stats.total_requests >= (CLIENTS * (ROUNDS + 2)) as u64);
}

#[test]
fn tiny_pages_stream_the_full_range() {
    let (served, handle) = loopback(ServerOptions::default());
    let mut b = WriteBatch::new();
    for i in 0..100u32 {
        b.put(format!("k{i:03}").into_bytes(), format!("v{i}").into_bytes());
    }
    Session::commit(served.as_ref(), "master", b).unwrap();

    // A 7-entry page forces ~15 round trips for one scan.
    let opts = ClientOptions { page_size: 7, ..ClientOptions::default() };
    let session = RemoteSession::connect_with(handle.addr(), opts).unwrap();
    let all: Vec<_> = session
        .range("master", std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)
        .unwrap()
        .collect::<siri::Result<_>>()
        .unwrap();
    assert_eq!(all.len(), 100);
    assert!(all.windows(2).all(|w| w[0].key < w[1].key));
    assert_eq!(all[42].key.as_ref(), b"k042");
    assert_eq!(all[42].value.as_ref(), b"v42");

    // Prefix scan pages the same way.
    let tens: Vec<_> =
        session.scan_prefix("master", b"k04").unwrap().collect::<siri::Result<_>>().unwrap();
    assert_eq!(tens.len(), 10);

    // The server really served multiple scan pages for those cursors.
    let stats = session.server_stats().unwrap();
    assert!(
        stats.conns.iter().any(|c| c.scan_pages >= 15),
        "expected paged scans in the counters: {stats:?}"
    );
}

#[test]
fn remote_proofs_verify_offline() {
    let (served, handle) = loopback(ServerOptions::default());
    let mut b = WriteBatch::new();
    for i in 0..200u32 {
        b.put(format!("acct{i:04}").into_bytes(), format!("balance{i}").into_bytes());
    }
    Session::commit(served.as_ref(), "master", b).unwrap();

    let session = RemoteSession::connect(handle.addr()).unwrap();
    let (root, proof) = session.prove("master", b"acct0123").unwrap();
    assert_eq!(root, session.branch_digest("master").unwrap());
    // Verification is pure local computation: no server, no store. The
    // anchored verifier handles both bare and manifest-rooted proofs, so
    // this holds under any SIRI_SHARDS setting.
    let scheme = &siri::PosProofScheme;
    let verdict = siri::verify_anchored_membership(scheme, root, b"acct0123", &proof);
    assert_eq!(verdict.value().unwrap().as_ref(), b"balance123");
    assert!(!siri::verify_anchored_membership(scheme, root, b"acct9999", &proof).is_valid());
}

/// A server that lies about proofs must not get past the client. The
/// client's only trust anchor is the branch digest it fetched itself;
/// any proof whose claimed root differs from that digest — or whose
/// pages don't hash up to it — is rejected with `ProofRejected` before
/// a single byte of it is believed.
#[test]
fn malicious_server_proofs_are_rejected_client_side() {
    use bytes::Bytes;
    use siri::proto::{read_frame, write_frame, Request, Response, MAX_FRAME_BYTES, WIRE_VERSION};

    // A hand-rolled "server" speaking just enough of the wire protocol to
    // lie: honest handshake, honest digest, doctored proofs.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let digest = siri::crypto::sha256(b"the-root-the-client-trusts");
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        loop {
            let frame = match read_frame(&mut stream, MAX_FRAME_BYTES) {
                Ok(f) => f,
                Err(_) => return, // client hung up
            };
            let resp = match Request::decode(&frame).unwrap() {
                Request::Hello { .. } => Response::Hello { version: WIRE_VERSION },
                Request::BranchDigest { .. } => Response::Digest(digest),
                // Self-consistent proof (its page hashes to its root) —
                // but the root is not the digest this server vouched for.
                Request::Prove { .. } => {
                    let page = Bytes::from_static(b"an honest-looking page");
                    Response::Proof { root: siri::crypto::sha256(&page), pages: vec![page] }
                }
                // Claims the trusted digest, but the pages don't hash to it.
                Request::ProveRange { .. } => Response::Proof {
                    root: digest,
                    pages: vec![Bytes::from_static(b"garbage that anchors nowhere")],
                },
                // Claims the trusted digest with no evidence at all.
                Request::ProveBatch { .. } => Response::Proof { root: digest, pages: vec![] },
                _ => Response::Ok,
            };
            if write_frame(&mut stream, &resp.encode()).is_err() {
                return;
            }
        }
    });

    let session = RemoteSession::connect(addr).unwrap();

    // Root ≠ trusted digest: rejected before any verification walk.
    assert!(
        matches!(session.prove("master", b"k"), Err(IndexError::ProofRejected(_))),
        "a proof anchored at the server's own root must be rejected"
    );
    // Root matches but the pages are forged: the anchored walk rejects.
    assert!(matches!(
        session.prove_range("master", std::ops::Bound::Unbounded, std::ops::Bound::Unbounded),
        Err(IndexError::ProofRejected(_))
    ));
    // An empty proof cannot claim a non-zero digest.
    let keys = vec![bytes::Bytes::from_static(b"k")];
    assert!(matches!(session.prove_batch("master", &keys), Err(IndexError::ProofRejected(_))));

    drop(session);
    server.join().unwrap();
}

#[test]
fn anti_entropy_over_the_wire_ships_deltas_and_resumes() {
    let (served, handle) = loopback(ServerOptions::default());
    let children = siri::pos_tree::Node::children_of_page;

    // Seed the server with 3000 records.
    let mut b = WriteBatch::new();
    for i in 0..3000u32 {
        b.put(format!("key{i:05}").into_bytes(), format!("value-{i}-r0").into_bytes());
    }
    Session::commit(served.as_ref(), "master", b).unwrap();

    // Cold replica: the first sync fetches the whole version.
    let local = MemStore::new_shared();
    let session = RemoteSession::connect(handle.addr()).unwrap();
    let (v1, cold) =
        session.sync_branch("master", local.as_ref(), children, &SyncOptions::default()).unwrap();
    assert!(cold.complete);
    assert!(cold.pages_fetched > 10);
    assert!(local.contains(&v1));
    assert!(cold.round_trips < cold.pages_fetched, "fetches must batch");

    // The replica answers reads with no server involved. Open through an
    // engine, which resolves a shard-manifest digest (SIRI_SHARDS runs)
    // exactly like a bare tree root.
    let replica = Forkbase::with_store(PosFactory(PosParams::default()), local.clone(), 0);
    replica.open_branch("v1", v1);
    assert_eq!(
        Session::get(&replica, "v1", b"key00042").unwrap().unwrap().as_ref(),
        b"value-42-r0".as_ref()
    );

    // Mutate 1% of the records server-side — a contiguous run, the shape
    // anti-entropy is built for: the rewrite is confined to a few leaf
    // pages plus the spine above them.
    let mut delta = WriteBatch::new();
    for k in 60..90u32 {
        delta.put(format!("key{k:05}").into_bytes(), format!("value-{k}-r1").into_bytes());
    }
    Session::commit(served.as_ref(), "master", delta).unwrap();

    // Mid-sync disconnect: a one-page budget cuts the pull short — the new
    // root alone can never be a complete delta once any leaf changed.
    let cut = SyncOptions { max_pages: Some(1), ..SyncOptions::default() };
    let (v2, first) = session.sync_branch("master", local.as_ref(), children, &cut).unwrap();
    assert!(!first.complete, "one page cannot cover a 30-record delta");
    assert!(!local.contains(&v2), "an unfinished sync must not publish the new root");

    // ...and the retry finishes only the unfinished tail.
    let (v2b, rest) =
        session.sync_branch("master", local.as_ref(), children, &SyncOptions::default()).unwrap();
    assert_eq!(v2, v2b);
    assert!(rest.complete);
    assert!(local.contains(&v2));
    assert_eq!(first.missing + rest.missing, 0);

    // The acceptance gate: a 1% mutation syncs for <10% of the cold bytes,
    // disconnect included.
    let delta_bytes = first.bytes_fetched + rest.bytes_fetched;
    assert!(
        delta_bytes < cold.bytes_fetched / 10,
        "1% delta must ship <10% of a cold sync ({delta_bytes} B vs {} B)",
        cold.bytes_fetched
    );

    // Both versions are now fully readable locally.
    replica.open_branch("v2", v2);
    assert_eq!(
        Session::get(&replica, "v2", b"key00071").unwrap().unwrap().as_ref(),
        b"value-71-r1".as_ref()
    );
    assert_eq!(
        Session::get(&replica, "v1", b"key00071").unwrap().unwrap().as_ref(),
        b"value-71-r0".as_ref()
    );

    // Re-syncing an up-to-date replica costs nothing but the digest probe.
    let (_, again) =
        session.sync_branch("master", &local, children, &SyncOptions::default()).unwrap();
    assert_eq!(again.pages_fetched, 0);
    assert_eq!(again.subtrees_skipped, 1, "pruned at the root");
}

#[test]
fn unknown_branch_surfaces_the_engine_error_variant() {
    let (_served, handle) = loopback(ServerOptions::default());
    let session = RemoteSession::connect(handle.addr()).unwrap();
    assert!(matches!(session.get("ghost", b"k"), Err(IndexError::Unsupported("unknown branch"))));
    assert!(matches!(
        session.branch_digest("ghost"),
        Err(IndexError::Unsupported("unknown branch"))
    ));
}

#[test]
fn connection_cap_sheds_load_and_recovers() {
    let opts = ServerOptions { max_connections: 1, ..ServerOptions::default() };
    let (_served, handle) = loopback(opts);

    let holder = RemoteSession::connect(handle.addr()).unwrap();
    assert!(holder.get("master", b"k").unwrap().is_none());

    // Slot taken: the next connection gets one ERR_BUSY frame and a close,
    // which the client surfaces as a failed handshake.
    assert!(RemoteSession::connect(handle.addr()).is_err());
    assert_eq!(handle.stats().rejected, 1);

    // Freeing the slot re-admits new connections.
    drop(holder);
    let mut admitted = false;
    for _ in 0..100 {
        if let Ok(session) = RemoteSession::connect(handle.addr()) {
            assert!(session.get("master", b"k").unwrap().is_none());
            admitted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(admitted, "server never freed the connection slot");
}

#[test]
fn remote_shutdown_is_opt_in() {
    // Default: the verb is refused and the server keeps serving.
    let (_served, handle) = loopback(ServerOptions::default());
    let session = RemoteSession::connect(handle.addr()).unwrap();
    assert!(matches!(session.shutdown_server(), Err(IndexError::Remote(_))));
    assert!(session.get("master", b"k").unwrap().is_none());
    assert!(!handle.stopping());

    // Opted in: the verb acks, the server stops, new connections fail.
    let opts = ServerOptions { allow_remote_shutdown: true, ..ServerOptions::default() };
    let (_served, handle) = loopback(opts);
    let addr = handle.addr();
    let session = RemoteSession::connect(addr).unwrap();
    session.shutdown_server().unwrap();
    handle.wait();
    assert!(handle.stopping());
    assert!(RemoteSession::connect(addr).is_err());
}

#[test]
fn per_connection_counters_add_up() {
    let (_served, handle) = loopback(ServerOptions::default());
    let session = RemoteSession::connect(handle.addr()).unwrap();
    let mut b = WriteBatch::new();
    b.put(&b"k"[..], &b"v"[..]);
    session.commit("master", b).unwrap();
    session
        .commit("master", {
            let mut b = WriteBatch::new();
            b.put(&b"k2"[..], &b"v2"[..]);
            b
        })
        .unwrap();
    for _ in 0..3 {
        session.get("master", b"k").unwrap();
    }

    let stats = session.server_stats().unwrap();
    assert_eq!(stats.active, 1);
    let row = &stats.conns[0];
    assert_eq!(row.commits, 2);
    assert_eq!(row.reads, 3);
    // Hello + 2 commits + 3 gets + this stats call.
    assert_eq!(row.requests, 7);
    assert!(row.bytes_in > 0 && row.bytes_out > 0);
    assert_eq!(stats.total_requests, row.requests);

    // A digest mismatch between transports would be caught here too: the
    // served engine and the remote view agree on the head.
    assert_eq!(session.branch_digest("master").unwrap(), _served.branch_digest("master").unwrap());
}

#[test]
fn commit_info_receipts_cross_the_wire_intact() {
    let (served, handle) = loopback(ServerOptions::default());
    let session = RemoteSession::connect(handle.addr()).unwrap();

    let mut b = WriteBatch::new();
    b.put(&b"a"[..], &b"1"[..]);
    let first = session.commit("master", b).unwrap();
    assert_eq!(first.root, Session::branch_digest(served.as_ref(), "master").unwrap());

    let mut b = WriteBatch::new();
    b.put(&b"b"[..], &b"2"[..]);
    let second = session.commit("master", b).unwrap();
    assert_eq!(second.parent, first.root, "receipt chain must thread across the wire");
    assert_ne!(second.root, Hash::ZERO);
}
