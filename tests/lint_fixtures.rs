//! Fixture battery for `siri-lint` (ISSUE 7, satellite c).
//!
//! Three layers of evidence that the linter means what it says:
//!
//! * every known-bad fixture under `tests/lint_fixtures/` produces the
//!   expected findings under the strict profile (each rule has one);
//! * the known-good fixture — which exercises each rule's happy path,
//!   including test-code exemptions — produces none;
//! * the linter run over this very workspace, with the checked-in
//!   `lint.toml`, reports zero findings and zero stale allowlist entries.
//!
//! The fixture directory is skipped by the workspace walker (and is not a
//! cargo target), so the deliberately bad snippets never pollute the real
//! lint run or the build.

use std::path::{Path, PathBuf};

use siri_lint::{lint_files_strict, lint_workspace, load_config, Diagnostic};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures").join(name)
}

fn strict(name: &str) -> Vec<Diagnostic> {
    lint_files_strict(&[fixture(name)]).expect("fixture must lex and lint")
}

fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn bad_panic_fixture_flags_all_three_sites() {
    let d = strict("bad_panic.rs");
    assert_eq!(rules(&d), ["no-panic", "no-panic", "no-panic"], "{d:?}");
    let lines: Vec<u32> = d.iter().map(|d| d.line).collect();
    assert_eq!(lines, [5, 9, 13], "one finding per body, in line order");
}

#[test]
fn bad_store_sugar_fixture_flags_both_receiver_spellings() {
    let d = strict("bad_store_sugar.rs");
    assert_eq!(rules(&d), ["fallible-store", "fallible-store"], "{d:?}");
    assert!(d[0].message.contains("put") && d[1].message.contains("get"), "{d:?}");
}

#[test]
fn bad_unsafe_fixture_flags_missing_safety_comment() {
    let d = strict("bad_unsafe.rs");
    assert_eq!(rules(&d), ["safety-comment"], "{d:?}");
}

#[test]
fn bad_nondeterminism_fixture_flags_clock_and_rng() {
    let d = strict("bad_nondeterminism.rs");
    assert_eq!(rules(&d), ["determinism", "determinism", "determinism"], "{d:?}");
}

#[test]
fn bad_lock_order_fixture_flags_inverted_acquisition() {
    let d = strict("bad_lock_order.rs");
    assert_eq!(rules(&d), ["lock-order"], "{d:?}");
    assert!(d[0].message.contains("branch"), "{d:?}");
}

#[test]
fn good_fixture_is_clean_under_every_strict_rule() {
    let d = strict("good_clean.rs");
    assert!(d.is_empty(), "known-good fixture must pass: {d:?}");
}

/// The acceptance gate, as a test: the workspace itself lints clean with
/// the checked-in allowlist, and the allowlist carries no dead weight.
#[test]
fn workspace_lints_clean_with_checked_in_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let config = load_config(root).expect("lint.toml must parse");
    let report = lint_workspace(root, &config).expect("workspace walk must succeed");
    assert!(
        report.diags.is_empty(),
        "workspace must lint clean; fix or allowlist (with a reason):\n{}",
        report.diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale lint.toml entries (suppressed nothing): {:?}",
        report.unused_allows.iter().map(|a| (&a.rule, &a.path)).collect::<Vec<_>>()
    );
    assert!(report.files > 100, "walker should see the whole workspace, saw {}", report.files);
    assert!(report.suppressed > 0, "the documented sugar suppressions should be exercised");
}
