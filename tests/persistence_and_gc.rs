//! End-to-end persistence and garbage collection: a real index on the
//! file-backed store surviving process "restarts", and version retirement
//! reclaiming exclusive pages while shared ones survive — on *both*
//! backends, now that GC is generic over [`siri::Reclaim`]. On the durable
//! backend a sweep is a compaction: the on-disk footprint must shrink to
//! (almost) the live page set's byte size.

use std::sync::Arc;

use siri::workloads::YcsbConfig;
use siri::{
    CachingStore, Entry, MemStore, PageSet, PosParams, PosTree, Reclaim, SharedStore, SiriIndex,
};
use siri_store::{gc, FileStore};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("siri-integration-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.db", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn pos_tree_survives_restart_on_file_store() {
    let path = tmp("pos-restart");
    let ycsb = YcsbConfig::default();
    let root;
    {
        let (fs, _) = FileStore::open(&path).unwrap();
        let store: SharedStore = Arc::new(fs);
        let mut t = PosTree::new(store, PosParams::default());
        t.batch_insert(ycsb.dataset(2_000)).unwrap();
        root = t.root();
    } // "process exits"

    let (fs, recovered) = FileStore::open(&path).unwrap();
    assert!(recovered > 0, "pages must persist");
    let store: SharedStore = Arc::new(fs);
    let t = PosTree::open(store, PosParams::default(), root);
    assert_eq!(t.len().unwrap(), 2_000);
    assert_eq!(t.get(&ycsb.key(42)).unwrap().unwrap(), ycsb.value(42, 0));
    // Proofs still verify against the persisted digest.
    let proof = t.prove(&ycsb.key(7)).unwrap();
    assert!(PosTree::verify_proof(root, &ycsb.key(7), &proof).is_valid());
}

#[test]
fn all_indexes_work_over_the_file_store() {
    use siri::{IndexFactory, MbtFactory, MptFactory, MvmbFactory, MvmbParams, PosFactory};
    let entries: Vec<Entry> = YcsbConfig::default().dataset(500);

    macro_rules! check {
        ($name:expr, $factory:expr) => {{
            let path = tmp($name);
            let (fs, _) = FileStore::open(&path).unwrap();
            let store: SharedStore = Arc::new(fs);
            let mut idx = $factory.empty(store);
            idx.batch_insert(entries.clone()).unwrap();
            assert_eq!(idx.len().unwrap(), 500, "{}", $name);
            assert!(idx.get(&entries[99].key).unwrap().is_some());
        }};
    }
    check!("fs-pos", PosFactory(PosParams::default()));
    check!("fs-mpt", MptFactory);
    check!("fs-mbt", MbtFactory { buckets: 64, fanout: 4 });
    check!("fs-mvmb", MvmbFactory(MvmbParams::default()));
}

/// Build versions, retire all but the head, sweep, and check the head
/// survives intact — shared logic for both backends.
fn gc_retires_versions_on<S: Reclaim + 'static>(store_arc: Arc<S>) -> (Arc<S>, PosTree) {
    let ycsb = YcsbConfig::default();
    let shared: SharedStore = store_arc.clone();
    let mut t = PosTree::new(shared, PosParams::default());
    t.batch_insert(ycsb.dataset(3_000)).unwrap();
    let old = t.clone();
    for v in 1..=5u32 {
        t.batch_insert((0..150u64).map(|i| ycsb.entry(i * 11 % 3_000, v)).collect()).unwrap();
    }

    // Retire everything but the head: reclaim must free pages exclusive to
    // the old versions, while the head stays fully intact.
    let live: Vec<PageSet> = vec![t.page_set()];
    let (reclaimed_pages, reclaimed_bytes) =
        gc::sweep_unreachable(store_arc.as_ref(), &live).unwrap();
    assert!(reclaimed_pages > 0 && reclaimed_bytes > 0, "retired versions must free pages");

    // Head unaffected; the retired snapshot is now (correctly) broken.
    assert_eq!(t.len().unwrap(), 3_000);
    assert_eq!(t.scan().unwrap().len(), 3_000);
    assert!(old.scan().is_err() || old.page_set().len() < live[0].len());
    (store_arc, t)
}

#[test]
fn gc_reclaims_retired_versions_only() {
    let (mem, t) = gc_retires_versions_on(Arc::new(MemStore::new()));
    assert_eq!(mem.len(), t.page_set().len(), "only the head's pages remain");
}

#[test]
fn gc_compacts_the_file_store_on_disk() {
    let path = tmp("gc-compact");
    let (fs, _) = FileStore::open(&path).unwrap();
    let fs = Arc::new(fs);
    let disk_before = fs.disk_bytes();
    let (fs, t) = gc_retires_versions_on(fs);

    // The acceptance bar: after sweeping, the on-disk footprint is within
    // 10% of the live page set's byte size (frame headers are 37 B/page).
    let live_bytes = t.page_set().byte_size();
    let disk = fs.disk_bytes();
    assert!(disk > 0 && disk_before < disk);
    assert!(
        disk as f64 <= live_bytes as f64 * 1.10,
        "disk {disk} B not within 10% of live {live_bytes} B"
    );

    // Crash-free reopen sees exactly the live set and the head still reads.
    let root = t.root();
    drop(t);
    drop(fs);
    let (fs, recovered) = FileStore::open(&path).unwrap();
    let reopened = PosTree::open(Arc::new(fs) as SharedStore, PosParams::default(), root);
    assert_eq!(recovered, reopened.page_set().len());
    assert_eq!(reopened.len().unwrap(), 3_000);
}

#[test]
fn concurrent_readers_during_writes() {
    // Handles are snapshots: readers on a fixed version see stable content
    // while a writer advances the head on the same shared store.
    let store = MemStore::new_shared();
    let ycsb = YcsbConfig::default();
    let mut head = PosTree::new(store, PosParams::default());
    head.batch_insert(ycsb.dataset(2_000)).unwrap();
    let frozen = head.clone();
    let frozen_root = frozen.root();

    let readers: Vec<_> = (0..4)
        .map(|r| {
            let snapshot = frozen.clone();
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    let key = YcsbConfig::default().key((i * 7 + r) % 2_000);
                    assert!(snapshot.get(&key).unwrap().is_some());
                }
                snapshot.root()
            })
        })
        .collect();

    // Writer mutates the head concurrently.
    for v in 1..=10u32 {
        head.batch_insert((0..100u64).map(|i| ycsb.entry(i, v)).collect()).unwrap();
    }

    for r in readers {
        assert_eq!(r.join().unwrap(), frozen_root, "snapshot must be stable");
    }
    assert_ne!(head.root(), frozen_root);
}

#[test]
fn concurrent_readers_survive_a_file_store_compaction() {
    // Readers race a compaction on the durable backend: every lookup must
    // come back correct — served from either generation, never an error.
    let path = tmp("gc-race");
    let (fs, _) = FileStore::open(&path).unwrap();
    let fs = Arc::new(fs);
    let ycsb = YcsbConfig::default();
    let mut head = PosTree::new(Arc::clone(&fs) as SharedStore, PosParams::default());
    head.batch_insert(ycsb.dataset(2_000)).unwrap();
    let old = head.clone();
    head.batch_insert((0..200u64).map(|i| ycsb.entry(i, 1)).collect()).unwrap();
    let _ = old; // retired version: its exclusive pages are garbage

    let snapshot = head.clone();
    let reader = std::thread::spawn(move || {
        for round in 0..20u64 {
            for i in (0..2_000u64).step_by(97) {
                assert!(snapshot.get(&ycsb.key(i)).unwrap().is_some(), "round {round} key {i}");
            }
        }
    });
    let (reclaimed, _) = fs.sweep(&head.page_set()).unwrap();
    assert!(reclaimed > 0);
    reader.join().unwrap();
    assert_eq!(head.len().unwrap(), 2_000);
}

#[test]
fn caching_store_serves_a_live_index() {
    // Client-side cached reads return exactly the server's content.
    let server = MemStore::new_shared();
    let ycsb = YcsbConfig::default();
    let mut server_idx = PosTree::new(server.clone(), PosParams::default());
    server_idx.batch_insert(ycsb.dataset(1_000)).unwrap();

    let client_store: SharedStore = Arc::new(CachingStore::new(server, 1_000));
    let client_idx = PosTree::open(client_store, PosParams::default(), server_idx.root());
    for i in (0..1_000u64).step_by(50) {
        assert_eq!(client_idx.get(&ycsb.key(i)).unwrap().unwrap(), ycsb.value(i, 0));
    }
}
