//! Property tests for the write-batch + cursor API redesign:
//!
//! * random interleaved put/delete sequences agree with a `BTreeMap` model
//!   on all four structures;
//! * delete-then-reinsert restores the identical root hash on the three
//!   SIRI structures (Structural Invariance under the full op set);
//! * cursor `range()` output equals the filtered full `scan()` for random
//!   bounds on every structure.

use std::collections::BTreeMap;
use std::ops::Bound;

use proptest::prelude::*;
use siri::{
    Entry, IndexFactory, MbtFactory, MemStore, MptFactory, MvmbFactory, MvmbParams, PosFactory,
    PosParams, SiriIndex, WriteBatch,
};

/// A raw op: `(key, value, tag)`. `tag % 4 == 0` deletes (so roughly a
/// quarter of the ops are deletes), otherwise the value is put.
type RawOp = (Vec<u8>, Vec<u8>, u8);

fn is_delete(op: &RawOp) -> bool {
    op.2.is_multiple_of(4)
}

/// Random interleaved puts and deletes over a small key space, so deletes
/// actually hit live keys, collapse paths, and empty nodes.
fn arb_ops(max_batches: usize) -> impl Strategy<Value = Vec<Vec<RawOp>>> {
    let key = proptest::collection::vec(proptest::num::u8::ANY, 1..5);
    let value = proptest::collection::vec(proptest::num::u8::ANY, 0..16);
    let op = (key, value, proptest::num::u8::ANY);
    proptest::collection::vec(proptest::collection::vec(op, 1..20), 1..max_batches)
}

fn to_batch(raw: &[RawOp]) -> WriteBatch {
    let mut batch = WriteBatch::new();
    for op in raw {
        if is_delete(op) {
            batch.delete(op.0.clone());
        } else {
            batch.put(op.0.clone(), op.1.clone());
        }
    }
    batch
}

fn apply_to_model(model: &mut BTreeMap<Vec<u8>, Vec<u8>>, raw: &[RawOp]) {
    for op in raw {
        if is_delete(op) {
            model.remove(&op.0);
        } else {
            model.insert(op.0.clone(), op.1.clone());
        }
    }
}

fn check_against_model<I: SiriIndex>(idx: &I, model: &BTreeMap<Vec<u8>, Vec<u8>>) {
    assert_eq!(idx.len().unwrap(), model.len(), "{} len", idx.kind());
    for (k, v) in model {
        assert_eq!(
            idx.get(k).unwrap().as_deref(),
            Some(v.as_slice()),
            "{} missing {k:?}",
            idx.kind()
        );
    }
    let scan = idx.scan().unwrap();
    assert_eq!(scan.len(), model.len(), "{} scan len", idx.kind());
    assert!(scan.windows(2).all(|w| w[0].key < w[1].key), "{} scan unsorted", idx.kind());
    for e in &scan {
        assert_eq!(
            model.get(e.key.as_ref()).map(|v| v.as_slice()),
            Some(e.value.as_ref()),
            "{} phantom entry {:?}",
            idx.kind(),
            e.key
        );
    }
}

fn bound_of(sel: u8, key: &[u8]) -> Bound<&[u8]> {
    match sel % 3 {
        0 => Bound::Included(key),
        1 => Bound::Excluded(key),
        _ => Bound::Unbounded,
    }
}

fn in_bounds(start: &Bound<&[u8]>, end: &Bound<&[u8]>, key: &[u8]) -> bool {
    let after_start = match start {
        Bound::Included(s) => key >= *s,
        Bound::Excluded(s) => key > *s,
        Bound::Unbounded => true,
    };
    let before_end = match end {
        Bound::Included(e) => key <= *e,
        Bound::Excluded(e) => key < *e,
        Bound::Unbounded => true,
    };
    after_start && before_end
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn interleaved_put_delete_matches_model_on_all_structures(raw in arb_ops(8)) {
        let mut model = BTreeMap::new();
        for batch in &raw {
            apply_to_model(&mut model, batch);
        }

        macro_rules! check {
            ($factory:expr) => {{
                let mut idx = $factory.empty(MemStore::new_shared());
                for batch in &raw {
                    idx.commit(to_batch(batch)).unwrap();
                }
                check_against_model(&idx, &model);
            }};
        }
        check!(PosFactory(PosParams::default()));
        check!(MptFactory);
        check!(MbtFactory { buckets: 32, fanout: 4 });
        check!(MvmbFactory(MvmbParams::default()));
    }

    #[test]
    fn delete_then_reinsert_restores_the_root(raw in arb_ops(4), victims in 1usize..8) {
        // Build each SIRI structure, delete a deterministic subset of live
        // keys, reinsert the same records: the root must round-trip.
        let mut model = BTreeMap::new();
        for batch in &raw {
            apply_to_model(&mut model, batch);
        }
        if model.is_empty() {
            return; // vacuous draw: every key ended deleted
        }
        let keys: Vec<&Vec<u8>> = model.keys().collect();
        let chosen: Vec<Entry> = keys
            .iter()
            .step_by((keys.len() / victims).max(1))
            .map(|k| Entry::new((*k).clone(), model[*k].clone()))
            .collect();

        macro_rules! roundtrip {
            ($factory:expr) => {{
                let mut idx = $factory.empty(MemStore::new_shared());
                for batch in &raw {
                    idx.commit(to_batch(batch)).unwrap();
                }
                let before = idx.root();
                let mut del = WriteBatch::new();
                for e in &chosen {
                    del.delete(e.key.clone());
                }
                idx.commit(del).unwrap();
                prop_assert_ne!(before, idx.root(), "{} delete must move the root", idx.kind());
                let mut back = WriteBatch::new();
                for e in &chosen {
                    back.put(e.key.clone(), e.value.clone());
                }
                idx.commit(back).unwrap();
                prop_assert_eq!(
                    before,
                    idx.root(),
                    "{} delete-then-reinsert must restore the root",
                    idx.kind()
                );
            }};
        }
        roundtrip!(PosFactory(PosParams::default()));
        roundtrip!(MptFactory);
        roundtrip!(MbtFactory { buckets: 32, fanout: 4 });
    }

    #[test]
    fn range_cursor_equals_filtered_scan(
        raw in arb_ops(4),
        lo in proptest::collection::vec(proptest::num::u8::ANY, 0..4),
        hi in proptest::collection::vec(proptest::num::u8::ANY, 0..4),
        sel in proptest::num::u8::ANY,
    ) {
        macro_rules! check {
            ($factory:expr) => {{
                let mut idx = $factory.empty(MemStore::new_shared());
                for batch in &raw {
                    idx.commit(to_batch(batch)).unwrap();
                }
                let start = bound_of(sel, &lo);
                let end = bound_of(sel / 3, &hi);
                let got: Vec<Entry> =
                    idx.range(start, end).collect::<siri::Result<_>>().unwrap();
                let expect: Vec<Entry> = idx
                    .scan()
                    .unwrap()
                    .into_iter()
                    .filter(|e| in_bounds(&start, &end, &e.key))
                    .collect();
                prop_assert_eq!(&got, &expect, "{} range/scan divergence", idx.kind());
            }};
        }
        check!(PosFactory(PosParams::default()));
        check!(MptFactory);
        check!(MbtFactory { buckets: 16, fanout: 4 });
        check!(MvmbFactory(MvmbParams::default()));
    }
}
