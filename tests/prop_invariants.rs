//! Property-based tests over the whole stack: for arbitrary record sets,
//! the three SIRI structures are order-insensitive, all four agree with a
//! model map, and diff/merge round-trip.

use std::collections::BTreeMap;

use proptest::prelude::*;
use siri::{
    diff_by_scan, merge, Entry, IndexFactory, MbtFactory, MemStore, MergeStrategy, MptFactory,
    MvmbFactory, MvmbParams, PosFactory, PosParams, SiriIndex,
};

/// Random small key/value pairs; keys constrained to provoke shared
/// prefixes (MPT extensions) and duplicates (last-write-wins).
fn arb_entries(max: usize) -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(proptest::num::u8::ANY, 1..6),
            proptest::collection::vec(proptest::num::u8::ANY, 0..24),
        ),
        1..max,
    )
}

fn to_entries(raw: &[(Vec<u8>, Vec<u8>)]) -> Vec<Entry> {
    raw.iter().map(|(k, v)| Entry::new(k.clone(), v.clone())).collect()
}

fn model(raw: &[(Vec<u8>, Vec<u8>)]) -> BTreeMap<Vec<u8>, Vec<u8>> {
    raw.iter().cloned().collect()
}

fn check_matches_model<I: SiriIndex>(idx: &I, model: &BTreeMap<Vec<u8>, Vec<u8>>) {
    assert_eq!(idx.len().unwrap(), model.len(), "{}", idx.kind());
    for (k, v) in model {
        assert_eq!(
            idx.get(k).unwrap().as_deref(),
            Some(v.as_slice()),
            "{} missing key {k:?}",
            idx.kind()
        );
    }
    let scan = idx.scan().unwrap();
    assert!(scan.windows(2).all(|w| w[0].key < w[1].key), "{} scan unsorted", idx.kind());
    assert_eq!(scan.len(), model.len());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn all_indexes_match_a_model_map(raw in arb_entries(120)) {
        let entries = to_entries(&raw);
        let m = model(&raw);

        macro_rules! check {
            ($factory:expr) => {{
                let mut idx = $factory.empty(MemStore::new_shared());
                idx.batch_insert(entries.clone()).unwrap();
                check_matches_model(&idx, &m);
            }};
        }
        check!(PosFactory(PosParams::default()));
        check!(MptFactory);
        check!(MbtFactory { buckets: 32, fanout: 4 });
        check!(MvmbFactory(MvmbParams::default()));
    }

    #[test]
    fn siri_roots_are_insertion_order_invariant(raw in arb_entries(80), seed in 0u64..1000) {
        // Deduplicate keys first: with duplicates, last-write-wins makes
        // different orders legitimately produce different *content*.
        let entries: Vec<Entry> =
            model(&raw).into_iter().map(|(k, v)| Entry::new(k, v)).collect();
        // A deterministic permutation + different batching from the seed.
        let mut shuffled = entries.clone();
        let n = shuffled.len();
        for i in (1..n).rev() {
            let j = ((seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64)) % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let chunk = (seed as usize % 7) + 1;

        macro_rules! invariant {
            ($factory:expr) => {{
                let factory = $factory;
                let mut a = factory.empty(MemStore::new_shared());
                a.batch_insert(entries.clone()).unwrap();
                let mut b = factory.empty(MemStore::new_shared());
                for c in shuffled.chunks(chunk) {
                    b.batch_insert(c.to_vec()).unwrap();
                }
                prop_assert_eq!(a.root(), b.root(), "structure {} not invariant", a.kind());
            }};
        }
        invariant!(PosFactory(PosParams::default()));
        invariant!(MptFactory);
        invariant!(MbtFactory { buckets: 32, fanout: 4 });
    }

    #[test]
    fn diff_matches_scan_reference_and_merge_roundtrips(
        left_raw in arb_entries(60),
        right_raw in arb_entries(60),
    ) {
        let factory = PosFactory(PosParams::default());
        let store = MemStore::new_shared();
        let mut left = factory.empty(store.clone());
        left.batch_insert(to_entries(&left_raw)).unwrap();
        let mut right = factory.empty(store);
        right.batch_insert(to_entries(&right_raw)).unwrap();

        // Structure-aware diff ≡ scan-based reference diff.
        let structural = left.diff(&right).unwrap();
        let reference = diff_by_scan(&left, &right).unwrap();
        prop_assert_eq!(&structural, &reference);

        // merge(left, right, PreferRight) contains exactly model-left ∪
        // model-right with right winning conflicts.
        let outcome = merge(&left, &right, MergeStrategy::PreferRight).unwrap();
        let mut expect = model(&left_raw);
        for (k, v) in model(&right_raw) {
            expect.insert(k, v);
        }
        let merged_scan = outcome.merged.scan().unwrap();
        prop_assert_eq!(merged_scan.len(), expect.len());
        for e in &merged_scan {
            prop_assert_eq!(expect.get(e.key.as_ref()).map(|v| v.as_slice()), Some(e.value.as_ref()));
        }

        // And merging right into the merged index is then conflict-free.
        let again = merge(&outcome.merged, &right, MergeStrategy::Strict).unwrap();
        prop_assert_eq!(again.added_from_right, 0);
    }

    #[test]
    fn proofs_verify_for_arbitrary_content(raw in arb_entries(60)) {
        let entries = to_entries(&raw);
        let m = model(&raw);
        let mut idx = PosFactory(PosParams::default()).empty(MemStore::new_shared());
        idx.batch_insert(entries).unwrap();
        let root = idx.root();
        for (k, v) in m.iter().take(5) {
            let proof = idx.prove(k).unwrap();
            let verdict = siri::PosTree::verify_proof(root, k, &proof);
            prop_assert_eq!(verdict.value().map(|b| b.as_ref()), Some(v.as_slice()));
        }
        let proof = idx.prove(b"\xff\xff\xff absent").unwrap();
        prop_assert!(matches!(
            siri::PosTree::verify_proof(root, b"\xff\xff\xff absent", &proof),
            siri::ProofVerdict::Absent
        ));
    }

    /// Anchored range proofs are *complete*: for arbitrary content on a
    /// sharded branch and an arbitrary window, the verified entry list is
    /// byte-for-byte the cursor scan over the same window — nothing
    /// dropped, nothing invented, nothing reordered across shards.
    #[test]
    fn range_proofs_match_the_cursor_scan(
        raw in arb_entries(60),
        lo in proptest::collection::vec(proptest::num::u8::ANY, 0..4),
        hi in proptest::collection::vec(proptest::num::u8::ANY, 0..4),
    ) {
        use std::ops::Bound;

        use siri::{Forkbase, Session, ShardingPolicy, WriteBatch};

        let engine = Forkbase::with_sharding(
            PosFactory(PosParams::default()),
            MemStore::new_shared(),
            ShardingPolicy::pinned(3),
            0,
        );
        let mut batch = WriteBatch::new();
        for (k, v) in &raw {
            batch.put(k.clone(), v.clone());
        }
        Session::commit(&engine, "master", batch).unwrap();
        let digest = Session::branch_digest(&engine, "master").unwrap();

        let (start, end) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let sb = Bound::Included(&start[..]);
        let eb = Bound::Excluded(&end[..]);
        let scanned: Vec<siri::Entry> = Session::range(&engine, "master", sb, eb)
            .unwrap()
            .collect::<siri::Result<_>>()
            .unwrap();

        let (root, proof) = Session::prove_range(&engine, "master", sb, eb).unwrap();
        prop_assert_eq!(root, digest, "range proofs must anchor at the branch digest");
        let verdict =
            siri::verify_anchored_range(&siri::PosProofScheme, digest, sb, eb, &proof);
        let entries = verdict.entries().unwrap_or_else(|| panic!("rejected: {verdict:?}"));
        prop_assert_eq!(entries, scanned.as_slice());
    }
}
