//! Sharded-head equivalence property (ISSUE 8 satellite): a branch
//! partitioned into per-key-range shard slots must be *logically
//! indistinguishable* from the classic single-slot branch.
//!
//! For every structure and both store backends (`SIRI_STORE`):
//!
//! * applying the same batch schedule to a pinned-4-shard engine and an
//!   unsharded engine yields bit-identical logical contents — the full
//!   range cursor (the k-way shard merge) enumerates exactly the entries
//!   the unsharded head holds;
//! * for the three structurally invariant structures the *collapsed*
//!   sharded head's digest equals the unsharded head's digest exactly
//!   (the MVMB+-Tree baseline is order-dependent by design, so it gets
//!   the contents check only);
//! * the equivalence survives **adaptive re-sharding**: driving the
//!   deterministic split/merge hooks between batches must never change
//!   what the branch contains.

use std::ops::Bound;

use proptest::prelude::*;
use siri::{
    Entry, Forkbase, IndexFactory, MbtFactory, MptFactory, MvmbFactory, MvmbParams, PosFactory,
    PosParams, ShardingPolicy, SiriIndex, WriteBatch,
};

/// A deterministic mixed put/delete schedule: `rounds` batches whose keys
/// spread across the whole byte space (so a uniform partition actually
/// routes to different shards) with periodic deletes and overwrites.
fn schedule(rounds: usize, per_round: usize, seed: u64) -> Vec<WriteBatch> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..rounds)
        .map(|r| {
            let mut b = WriteBatch::new();
            for i in 0..per_round {
                let n = next();
                let key =
                    vec![(n >> 56) as u8, (n >> 40) as u8, (n >> 24) as u8, (r as u8), (i as u8)];
                if n % 7 == 0 && r > 0 {
                    b.delete(key);
                } else {
                    b.put(key, format!("v{r}-{i}-{n}").into_bytes());
                }
            }
            b
        })
        .collect()
}

fn sorted_contents<F: IndexFactory>(fb: &Forkbase<F>) -> Vec<Entry> {
    fb.range("master", Bound::Unbounded, Bound::Unbounded)
        .unwrap()
        .collect::<siri::Result<Vec<Entry>>>()
        .unwrap()
}

/// Apply `batches` to a sharded and an unsharded engine and assert the
/// logical equivalence; `reshard` optionally drives the split/merge hooks
/// between batches. `digest_equal` is asserted only for the structurally
/// invariant structures.
fn check_equivalence<F: IndexFactory + Clone>(
    factory: F,
    batches: &[WriteBatch],
    digest_equal: bool,
    reshard: bool,
) {
    let sharded =
        Forkbase::with_sharding(factory.clone(), siri::env_store(), ShardingPolicy::pinned(4), 0);
    let single = Forkbase::with_sharding(factory, siri::env_store(), ShardingPolicy::single(), 0);
    for (i, b) in batches.iter().enumerate() {
        sharded.commit("master", b.clone()).unwrap();
        single.commit("master", b.clone()).unwrap();
        if reshard {
            // Exercise both directions of adaptive resharding mid-stream;
            // the hooks are best-effort, so a `false` return is fine —
            // what matters is that contents never move.
            match i % 3 {
                0 => {
                    let _ = sharded.split_branch_shard("master", i % 4);
                }
                1 => {
                    let _ = sharded.merge_branch_shards("master", 0);
                }
                _ => {}
            }
        }
    }
    let left = sorted_contents(&sharded);
    let right = sorted_contents(&single);
    assert_eq!(left, right, "sharded and single-slot contents diverged");
    assert!(left.windows(2).all(|w| w[0].key < w[1].key), "merged cursor must stay sorted");
    if digest_equal {
        assert_eq!(
            sharded.head("master").unwrap().root(),
            single.head("master").unwrap().root(),
            "collapsed sharded digest must equal the unsharded build (structural invariance)"
        );
    } else {
        // Order-dependent baseline: contents equal, digests may differ.
        assert_eq!(
            sharded.head("master").unwrap().len().unwrap(),
            single.head("master").unwrap().len().unwrap()
        );
    }
}

#[test]
fn all_structures_sharded_equals_unsharded() {
    let batches = schedule(6, 40, 42);
    check_equivalence(PosFactory(PosParams::default()), &batches, true, false);
    check_equivalence(MptFactory, &batches, true, false);
    check_equivalence(MbtFactory { buckets: 64, fanout: 8 }, &batches, true, false);
    check_equivalence(MvmbFactory(MvmbParams::default()), &batches, false, false);
}

#[test]
fn equivalence_survives_adaptive_split_and_merge() {
    let batches = schedule(9, 30, 7);
    check_equivalence(PosFactory(PosParams::default()), &batches, true, true);
    check_equivalence(MptFactory, &batches, true, true);
    check_equivalence(MbtFactory { buckets: 64, fanout: 8 }, &batches, true, true);
    check_equivalence(MvmbFactory(MvmbParams::default()), &batches, false, true);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Randomized schedules: the sharded POS-Tree branch stays digest-
    /// identical to the unsharded build across arbitrary put/delete mixes
    /// and interleaved reshard hooks.
    #[test]
    fn pos_tree_sharded_equivalence_holds_for_random_schedules(
        seed in 0u64..1_000_000,
        rounds in 2usize..7,
        per_round in 10usize..50,
        reshard in proptest::bool::ANY,
    ) {
        let batches = schedule(rounds, per_round, seed);
        check_equivalence(PosFactory(PosParams::default()), &batches, true, reshard);
    }
}
