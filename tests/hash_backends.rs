//! Differential tests of the SHA-256 backend dispatch: every available
//! backend (scalar always; SHA-NI / NEON when the CPU has them) must
//! produce bit-identical digests on arbitrary inputs, one-shot, streamed,
//! and through the multi-lane `hash_many` path. Content addressing makes
//! the digest the page's identity, so a single diverging bit would fork
//! every structure built on top — these tests are the contract that the
//! accelerated paths are pure speedups.
//!
//! Run with `SIRI_SHA256=scalar` / `SIRI_SHA256=accel` to pin the process
//! default; the `*_with` entry points below test all compiled-in backends
//! regardless of the override.

use proptest::prelude::*;
use siri::crypto::{
    active_backend, available_backends, digest_with, hash_many, hash_many_with, sha256,
    Sha256Backend,
};

/// NIST FIPS 180-4 vectors, checked against every backend at the
/// integration level (the unit tests cover them too; this guards the
/// facade re-exports).
#[test]
fn nist_vectors_on_every_available_backend() {
    let vectors: &[(&[u8], &str)] = &[
        (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
        (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
    ];
    for backend in available_backends() {
        for (msg, want) in vectors {
            assert_eq!(digest_with(backend, msg).to_hex(), *want, "{backend:?} on {msg:?}");
        }
    }
}

#[test]
fn active_backend_is_available_and_sha256_uses_it() {
    let active = active_backend();
    assert!(available_backends().contains(&active));
    let data = b"the active backend must be the one sha256() dispatches to";
    assert_eq!(sha256(data), digest_with(active, data));
    assert_eq!(hash_many(&[data.as_slice()]), vec![digest_with(active, data)]);
}

proptest! {
    /// Arbitrary inputs: every backend agrees with the scalar reference.
    #[test]
    fn backends_agree_on_arbitrary_input(
        data in proptest::collection::vec(proptest::num::u8::ANY, 0..2048)
    ) {
        let want = digest_with(Sha256Backend::Scalar, &data);
        for backend in available_backends() {
            prop_assert_eq!(digest_with(backend, &data), want, "backend {:?}", backend);
        }
    }

    /// Multi-lane hashing of arbitrary batches (ragged lengths, empty
    /// inputs, odd counts) matches per-input scalar digests on every
    /// backend.
    #[test]
    fn hash_many_agrees_on_arbitrary_batches(
        bufs in proptest::collection::vec(
            proptest::collection::vec(proptest::num::u8::ANY, 0..300),
            0..9,
        )
    ) {
        let views: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        let want: Vec<_> = views.iter().map(|d| digest_with(Sha256Backend::Scalar, d)).collect();
        for backend in available_backends() {
            prop_assert_eq!(&hash_many_with(backend, &views), &want, "backend {:?}", backend);
        }
    }

    /// Boundary sweep around the 64-byte block size with arbitrary fill —
    /// the padding logic is where accelerated implementations diverge
    /// first if they are going to.
    #[test]
    fn block_boundary_lengths_agree(fill in proptest::num::u8::ANY, len in 0usize..200) {
        let data = vec![fill; len];
        let want = digest_with(Sha256Backend::Scalar, &data);
        for backend in available_backends() {
            prop_assert_eq!(digest_with(backend, &data), want, "backend {:?} len {}", backend, len);
        }
    }
}
