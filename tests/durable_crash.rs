//! Crash-recovery properties of the segmented `FileStore`.
//!
//! Two failure families, both driven by proptest:
//!
//! * **Torn append** — the active segment (or the manifest) is truncated at
//!   an arbitrary byte offset, simulating power loss mid-write. Reopen must
//!   recover *exactly* the committed prefix: every frame wholly before the
//!   cut, nothing after it, and the store must keep working.
//! * **Crashed compaction** — the sweep is aborted at each of its
//!   crash points (new generation written / manifest tmp written / manifest
//!   swapped but old generation not yet deleted), optionally with the
//!   partial new generation itself torn. Reopen must serve every live page
//!   from whichever generation survived intact.
//! * **Group commit** — commits acknowledged under `FsyncPolicy::Group`
//!   are flush-covered before `note_commit` returns; a crash *between
//!   flush ticks* (simulated by cutting the segment anywhere inside the
//!   not-yet-acknowledged tail) must recover exactly an acked-commit
//!   prefix: no acked page lost, no torn frame surfaced.

use bytes::Bytes;
use proptest::prelude::*;
use siri_crypto::{sha256, Hash};
use siri_store::{
    CrashPoint, FileStore, FileStoreOptions, FsyncPolicy, NodeStore, PageSet, Reclaim,
};

fn tmp(name: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("siri-crash-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

/// Deterministic distinct page for index `i`.
fn page(i: usize) -> Bytes {
    let len = 20 + (i * 7) % 50;
    let mut v = vec![(i % 251) as u8; len];
    v[0] = (i / 251) as u8; // keep pages distinct past 251
    Bytes::from(v)
}

/// Bytes one frame occupies on disk: header (37) + payload.
fn frame_len(i: usize) -> u64 {
    37 + page(i).len() as u64
}

fn opts(max_segment_bytes: u64) -> FileStoreOptions {
    FileStoreOptions { max_segment_bytes, fsync: FsyncPolicy::Never }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Torn append on a single-segment store: truncating the segment at any
    /// offset keeps exactly the frames wholly before the cut.
    #[test]
    fn torn_append_recovers_exact_committed_prefix(
        n in 1usize..25,
        cut_permille in 0u64..1000,
        case in 0u64..u64::MAX,
    ) {
        let dir = tmp("torn-append", case);
        let hashes: Vec<Hash> = {
            let (store, _) = FileStore::open_with(&dir, opts(u64::MAX)).unwrap();
            let hs = (0..n).map(|i| store.put(page(i))).collect();
            store.sync().unwrap();
            hs
        };

        // Cut the lone segment at an arbitrary byte offset.
        let seg = dir.join("seg-00000001.seg");
        let total: u64 = (0..n).map(frame_len).sum();
        let cut = total * cut_permille / 1000;
        std::fs::OpenOptions::new().write(true).open(&seg).unwrap().set_len(cut).unwrap();

        // Expected surviving prefix: frames fully within `cut`.
        let mut end = 0u64;
        let mut expect = 0usize;
        for i in 0..n {
            end += frame_len(i);
            if end <= cut {
                expect = i + 1;
            } else {
                break;
            }
        }

        let (store, recovered) = FileStore::open_with(&dir, opts(u64::MAX)).unwrap();
        prop_assert_eq!(recovered, expect, "exactly the committed prefix");
        for (i, h) in hashes.iter().enumerate() {
            if i < expect {
                prop_assert_eq!(store.get(h).unwrap(), page(i));
            } else {
                prop_assert!(!store.contains(h), "page {} past the cut must be gone", i);
            }
        }
        // The truncated store keeps accepting and serving writes.
        let h = store.put(Bytes::from_static(b"post-crash"));
        prop_assert_eq!(store.get(&h).unwrap().as_ref(), b"post-crash");
        drop(store);
        let (store, re2) = FileStore::open_with(&dir, opts(u64::MAX)).unwrap();
        prop_assert_eq!(re2, expect + 1);
        prop_assert!(store.contains(&h));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Crash between group-commit flush ticks: every acknowledged commit
    /// is durable (`note_commit` only returns once a flush covered it), so
    /// cutting the segment anywhere inside the unacknowledged tail must
    /// recover all acked pages plus exactly the whole frames before the
    /// cut — never a torn frame, never a lost ack.
    #[test]
    fn group_commit_crash_recovers_acked_prefix(
        n_acked in 1usize..15,
        n_unacked in 0usize..8,
        cut_permille in 0u64..1000,
        case in 0u64..u64::MAX,
    ) {
        let dir = tmp("group-crash", case);
        let group_opts = FileStoreOptions {
            max_segment_bytes: u64::MAX,
            // Zero window: the flush tick is immediate, keeping the 24
            // proptest cases fast; the ack rule under test is identical.
            fsync: FsyncPolicy::Group(std::time::Duration::ZERO),
        };
        {
            let (store, _) = FileStore::open_with(&dir, group_opts).unwrap();
            for i in 0..n_acked {
                store.put(page(i));
                // Returning ⇒ a flush started after this append completed.
                store.note_commit().unwrap();
            }
            prop_assert_eq!(store.stats().commits, n_acked as u64);
            prop_assert!(store.stats().fsyncs >= 1);
            // The crash window: pages appended after the last tick whose
            // commit was never acknowledged.
            for i in n_acked..n_acked + n_unacked {
                store.put(page(i));
            }
        } // process dies between flush ticks

        // Power loss eats an arbitrary suffix of the *unacknowledged*
        // bytes (the acked prefix is flush-covered by construction).
        let acked_bytes: u64 = (0..n_acked).map(frame_len).sum();
        let unacked_bytes: u64 = (n_acked..n_acked + n_unacked).map(frame_len).sum();
        let cut = acked_bytes + unacked_bytes * cut_permille / 1000;
        let seg = dir.join("seg-00000001.seg");
        std::fs::OpenOptions::new().write(true).open(&seg).unwrap().set_len(cut).unwrap();

        // Expected survivors: all acked frames plus the whole unacked
        // frames wholly before the cut.
        let mut end = acked_bytes;
        let mut expect = n_acked;
        for i in n_acked..n_acked + n_unacked {
            end += frame_len(i);
            if end <= cut {
                expect = i + 1;
            } else {
                break;
            }
        }

        let (store, recovered) = FileStore::open_with(&dir, group_opts).unwrap();
        prop_assert_eq!(recovered, expect, "acked prefix plus whole pre-cut frames");
        for i in 0..n_acked {
            prop_assert_eq!(
                store.get(&sha256(&page(i))).as_ref(),
                Some(&page(i)),
                "acked page {} lost", i
            );
        }
        // The store keeps working after the crash, acks included.
        store.put(Bytes::from_static(b"post-group-crash"));
        store.note_commit().unwrap();
        drop(store);
        let (store, re2) = FileStore::open_with(&dir, group_opts).unwrap();
        prop_assert_eq!(re2, expect + 1);
        prop_assert!(store.contains(&sha256(b"post-group-crash")));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A torn or missing manifest must never lose pages: recovery falls
    /// back to loading every segment on disk.
    #[test]
    fn torn_manifest_loses_nothing(
        n in 1usize..40,
        cut_permille in 0u64..1000,
        delete in proptest::bool::ANY,
        case in 0u64..u64::MAX,
    ) {
        let dir = tmp("torn-manifest", case);
        let hashes: Vec<Hash> = {
            // Small segments: several rotations, so the manifest matters.
            let (store, _) = FileStore::open_with(&dir, opts(256)).unwrap();
            let hs = (0..n).map(|i| store.put(page(i))).collect();
            store.sync().unwrap();
            hs
        };

        let manifest = dir.join("MANIFEST");
        if delete {
            std::fs::remove_file(&manifest).unwrap();
        } else {
            let len = std::fs::metadata(&manifest).unwrap().len();
            let cut = len * cut_permille / 1000;
            std::fs::OpenOptions::new().write(true).open(&manifest).unwrap().set_len(cut).unwrap();
        }

        let (store, recovered) = FileStore::open_with(&dir, opts(256)).unwrap();
        prop_assert_eq!(recovered, n, "no page may vanish with the manifest");
        for (i, h) in hashes.iter().enumerate() {
            prop_assert_eq!(store.get(h).unwrap(), page(i));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Compaction aborted at any crash point (with the partial generation
    /// optionally torn as well) reopens to a store holding every live page.
    #[test]
    fn crashed_compaction_preserves_all_live_pages(
        n in 2usize..30,
        live_mask in proptest::collection::vec(proptest::bool::ANY, 30),
        crash_sel in 0usize..3,
        // >= 1000 means "no tear"; below that, the permille of the cut.
        tear_permille in 0u64..2000,
        case in 0u64..u64::MAX,
    ) {
        let crash = [
            CrashPoint::AfterSegmentsWritten,
            CrashPoint::AfterManifestTmp,
            CrashPoint::AfterSwap,
        ][crash_sel];
        let dir = tmp("crash-compact", case);
        let (store, _) = FileStore::open_with(&dir, opts(512)).unwrap();
        let hashes: Vec<Hash> = (0..n).map(|i| store.put(page(i))).collect();
        store.sync().unwrap();

        let mut live = PageSet::new();
        let mut live_idx = Vec::new();
        for (i, h) in hashes.iter().enumerate() {
            if live_mask[i] {
                live.insert(*h, page(i).len() as u64);
                live_idx.push(i);
            }
        }

        // Crash the compaction, then "kill the process".
        store.sweep_with_crash(&live, Some(crash)).unwrap();
        drop(store);

        // Optionally tear the tail of the newest segment file on disk —
        // a crash mid-write of the new generation.
        if tear_permille < 1000 {
            let mut segs: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().starts_with("seg-"))
                .map(|e| e.path())
                .collect();
            segs.sort();
            if let Some(newest) = segs.last() {
                // Only tear when the newest segment is an unreferenced
                // stray (pre-swap crash): tearing the *live* generation is
                // the torn-append scenario, covered above.
                if crash != CrashPoint::AfterSwap {
                    let len = std::fs::metadata(newest).unwrap().len();
                    let cut = len * tear_permille / 1000;
                    std::fs::OpenOptions::new()
                        .write(true)
                        .open(newest)
                        .unwrap()
                        .set_len(cut)
                        .unwrap();
                }
            }
        }

        // Reopen: every live page must be served, whatever generation won.
        let (store, _) = FileStore::open_with(&dir, opts(512)).unwrap();
        for &i in &live_idx {
            let got = store.try_get(&hashes[i]).unwrap();
            prop_assert_eq!(got.as_ref(), Some(&page(i)), "live page {} lost", i);
        }

        // And a completed sweep afterwards converges to exactly the live set.
        let (_, _) = store.sweep(&live).unwrap();
        prop_assert_eq!(store.len(), live_idx.len());
        for &i in &live_idx {
            prop_assert_eq!(store.get(&hashes[i]).unwrap(), page(i));
        }
        // Digest spot-check: content addressing holds after two generations.
        if let Some(&i) = live_idx.first() {
            prop_assert_eq!(sha256(&store.get(&hashes[i]).unwrap()), hashes[i]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
