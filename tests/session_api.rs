//! Behavioral battery over the [`siri::Session`] trait via
//! `siri::env_session()`. With no environment set this runs against the
//! in-process engine; with `SIRI_REMOTE=1` the same assertions run against
//! a loopback `siri-server` through the client crate — every commit, scan
//! page and proof crosses the wire, and nothing here may notice.

use std::ops::Bound;

use siri::{env_session, IndexError, WriteBatch};

fn batch(pairs: &[(&str, &str)]) -> WriteBatch {
    let mut b = WriteBatch::new();
    for (k, v) in pairs {
        b.put(k.as_bytes().to_vec(), v.as_bytes().to_vec());
    }
    b
}

#[test]
fn commit_get_and_receipt_chain() {
    let s = env_session();
    let first = s.commit("master", batch(&[("alice", "100"), ("bob", "75")])).unwrap();
    assert_eq!(first.root, s.branch_digest("master").unwrap());
    assert_eq!(s.get("master", b"alice").unwrap().unwrap().as_ref(), b"100");
    assert_eq!(s.get("master", b"nope").unwrap(), None);

    // The receipt chain: each commit's parent is the previous root.
    let second = s.commit("master", batch(&[("carol", "10")])).unwrap();
    assert_eq!(second.parent, first.root);
    assert_ne!(second.root, first.root);
    assert_eq!(second.root, s.branch_digest("master").unwrap());
}

#[test]
fn deletes_are_part_of_the_atomic_batch() {
    let s = env_session();
    s.commit("master", batch(&[("a", "1"), ("b", "2")])).unwrap();
    let mut b = WriteBatch::new();
    b.put(&b"c"[..], &b"3"[..]).delete(&b"a"[..]);
    s.commit("master", b).unwrap();
    assert_eq!(s.get("master", b"a").unwrap(), None);
    assert_eq!(s.get("master", b"c").unwrap().unwrap().as_ref(), b"3");
}

#[test]
fn range_and_scan_prefix_stream_in_order() {
    let s = env_session();
    let mut b = WriteBatch::new();
    for i in 0..600u32 {
        b.put(format!("key{i:04}").into_bytes(), format!("val{i}").into_bytes());
    }
    s.commit("master", b).unwrap();

    // Full scan: every key, sorted, with the right values — across enough
    // entries that a remote session needs several pages.
    let all: Vec<_> = s
        .range("master", Bound::Unbounded, Bound::Unbounded)
        .unwrap()
        .collect::<siri::Result<_>>()
        .unwrap();
    assert_eq!(all.len(), 600);
    assert!(all.windows(2).all(|w| w[0].key < w[1].key), "scan must be sorted");
    assert_eq!(all[17].key.as_ref(), b"key0017");
    assert_eq!(all[17].value.as_ref(), b"val17");

    // Half-open window with an excluded start.
    let window: Vec<_> = s
        .range("master", Bound::Excluded(&b"key0009"[..]), Bound::Included(&b"key0012"[..]))
        .unwrap()
        .collect::<siri::Result<_>>()
        .unwrap();
    let keys: Vec<&[u8]> = window.iter().map(|e| e.key.as_ref()).collect();
    assert_eq!(keys, vec![&b"key0010"[..], b"key0011", b"key0012"]);

    // Prefix scan is the range sugar: key001* is exactly ten records.
    let ten: Vec<_> =
        s.scan_prefix("master", b"key001").unwrap().collect::<siri::Result<_>>().unwrap();
    assert_eq!(ten.len(), 10);
    assert!(ten.iter().all(|e| e.key.starts_with(b"key001")));
}

#[test]
fn fork_diverges_and_branches_list() {
    let s = env_session();
    s.commit("master", batch(&[("base", "v0")])).unwrap();
    s.fork("master", "feature").unwrap();
    assert_eq!(
        s.branch_digest("feature").unwrap(),
        s.branch_digest("master").unwrap(),
        "a fork starts at the parent's head"
    );

    s.commit("feature", batch(&[("base", "v1"), ("extra", "yes")])).unwrap();
    assert_eq!(s.get("master", b"base").unwrap().unwrap().as_ref(), b"v0");
    assert_eq!(s.get("feature", b"base").unwrap().unwrap().as_ref(), b"v1");
    assert_eq!(s.get("master", b"extra").unwrap(), None);

    assert_eq!(s.branches().unwrap(), vec!["feature".to_string(), "master".to_string()]);
}

#[test]
fn deleted_branches_disappear() {
    let s = env_session();
    s.fork("master", "doomed").unwrap();
    s.commit("doomed", batch(&[("k", "v")])).unwrap();
    s.delete_branch("doomed").unwrap();
    assert_eq!(s.branches().unwrap(), vec!["master".to_string()]);
    assert!(matches!(s.get("doomed", b"k"), Err(IndexError::Unsupported("unknown branch"))));
}

#[test]
fn unknown_branch_errors_are_uniform() {
    // The exact same variant surfaces locally and across the wire (the
    // protocol carries known engine errors as codes, not strings).
    let s = env_session();
    assert!(matches!(s.get("ghost", b"k"), Err(IndexError::Unsupported("unknown branch"))));
    assert!(matches!(
        s.commit("ghost", batch(&[("k", "v")])),
        Err(IndexError::Unsupported("unknown branch"))
    ));
    assert!(matches!(s.branch_digest("ghost"), Err(IndexError::Unsupported("unknown branch"))));
    assert!(matches!(s.fork("ghost", "child"), Err(IndexError::Unsupported("unknown branch"))));
    assert!(matches!(
        s.range("ghost", Bound::Unbounded, Bound::Unbounded)
            .and_then(|c| c.collect::<siri::Result<Vec<_>>>()),
        Err(IndexError::Unsupported("unknown branch"))
    ));
}

#[test]
fn proofs_verify_offline_against_the_branch_digest() {
    let s = env_session();
    s.commit("master", batch(&[("alice", "100"), ("bob", "75"), ("carol", "10")])).unwrap();
    let (root, proof) = s.prove("master", b"bob").unwrap();

    // The anchor root is exactly the published digest, so a verifier that
    // learned the digest out of band needs nothing else from the server.
    // The anchored verifier resolves a shard-manifest first page (any
    // SIRI_SHARDS setting) the same as a bare tree root.
    assert_eq!(root, s.branch_digest("master").unwrap());
    let scheme = &siri::PosProofScheme;
    let verdict = siri::verify_anchored_membership(scheme, root, b"bob", &proof);
    assert_eq!(verdict.value().unwrap().as_ref(), b"75");

    // An absent key needs its own proof (the anchored verifier insists
    // every supplied page participate in the walk).
    let (aroot, aproof) = s.prove("master", b"mallory").unwrap();
    assert_eq!(aroot, root);
    let absent = siri::verify_anchored_membership(scheme, root, b"mallory", &aproof);
    assert!(absent.is_valid());
    assert_eq!(absent.value(), None);

    // Tamper check: one flipped bit and the proof no longer verifies.
    let mut forged = proof.clone();
    forged.tamper(0, 3);
    assert!(!siri::verify_anchored_membership(scheme, root, b"bob", &forged).is_valid());
}

#[test]
fn range_and_batch_proofs_verify_offline() {
    use siri::{
        verify_anchored_batch, verify_anchored_range, BatchVerdict, PosProofScheme, ProofVerdict,
    };

    let s = env_session();
    s.commit("master", batch(&[("alice", "100"), ("bob", "75"), ("carol", "10"), ("dave", "0")]))
        .unwrap();
    let digest = s.branch_digest("master").unwrap();

    // A range proof carries its window completely: exactly the covered
    // entries come back, in order, and the anchor is the branch digest.
    // (Under SIRI_REMOTE=1 the RemoteSession has already verified this
    // proof against the digest before handing it over.)
    let (root, proof) =
        s.prove_range("master", Bound::Included(&b"b"[..]), Bound::Excluded(&b"d"[..])).unwrap();
    assert_eq!(root, digest);
    let verdict = verify_anchored_range(
        &PosProofScheme,
        digest,
        Bound::Included(&b"b"[..]),
        Bound::Excluded(&b"d"[..]),
        &proof,
    );
    let entries = verdict.entries().expect("range proof must verify");
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].key.as_ref(), b"bob");
    assert_eq!(entries[1].key.as_ref(), b"carol");
    assert_eq!(entries[1].value.as_ref(), b"10");

    // A batched proof answers several keys from one deduplicated page set,
    // mixing membership and non-membership verdicts.
    let keys = vec![siri::Bytes::from_static(b"alice"), siri::Bytes::from_static(b"mallory")];
    let (root, bp) = s.prove_batch("master", &keys).unwrap();
    assert_eq!(root, digest);
    match verify_anchored_batch(&PosProofScheme, digest, &keys, &bp) {
        BatchVerdict::Verified(vs) => {
            assert_eq!(vs[0].value().unwrap().as_ref(), b"100");
            assert_eq!(vs[1], ProofVerdict::Absent);
        }
        other => panic!("batch proof rejected: {other:?}"),
    }
}

#[test]
fn empty_scan_and_empty_branch_behave() {
    let s = env_session();
    let none: Vec<_> = s
        .range("master", Bound::Unbounded, Bound::Unbounded)
        .unwrap()
        .collect::<siri::Result<_>>()
        .unwrap();
    assert!(none.is_empty());
    let none: Vec<_> =
        s.scan_prefix("master", b"zzz").unwrap().collect::<siri::Result<_>>().unwrap();
    assert!(none.is_empty());
}
