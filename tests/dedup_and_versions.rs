//! Deduplication metrics and version-management flows across crates —
//! the §4.2 analysis and §5.4 experiments in miniature.

use siri::workloads::YcsbConfig;
use siri::{
    cost_model, metrics, Entry, IndexFactory, MbtFactory, MptFactory, MvmbFactory, MvmbParams,
    PageSet, PosFactory, PosParams, SiriIndex, VersionStore,
};

/// Build two sequential versions differing in an α fraction of records
/// over a *continuous key range* — the §4.2.2 analysis setting ("each
/// instance differs its predecessor by ratio α of a continuous key range").
fn two_versions<F: IndexFactory>(factory: &F, n: usize, alpha: f64) -> (PageSet, PageSet) {
    let ycsb = YcsbConfig::default();
    let mut data = ycsb.dataset(n);
    data.sort();
    let mut idx = factory.empty(siri::env_store());
    idx.batch_insert(data.clone()).unwrap();
    let v1 = idx.page_set();
    let count = ((n as f64 * alpha) as usize).max(1);
    let start = n / 3; // contiguous run in key order
    let updates: Vec<Entry> = data[start..start + count]
        .iter()
        .map(|e| Entry::new(e.key.clone(), bytes::Bytes::from(vec![0xEE; e.value.len()])))
        .collect();
    idx.batch_insert(updates).unwrap();
    (v1, idx.page_set())
}

#[test]
fn sequential_version_dedup_tracks_the_paper_model() {
    // §4.2.2 predicts η ≈ 1/2 − α/2 for MBT and POS-Tree. Check the shape:
    // η decreases with α and sits in a sensible band around the line.
    for factory in [PosFactory(PosParams::default())] {
        let mut last = 1.0f64;
        for alpha in [0.05, 0.2, 0.5] {
            let (v1, v2) = two_versions(&factory, 4_000, alpha);
            let eta = metrics::deduplication_ratio(&[v1, v2]);
            let predicted = cost_model::eta_sequential(alpha);
            assert!(eta < last, "η must fall as α grows");
            assert!(
                (eta - predicted).abs() < 0.25,
                "α={alpha}: η={eta:.3} too far from model {predicted:.3}"
            );
            last = eta;
        }
    }
}

#[test]
fn high_overlap_collaboration_ranks_structures_like_the_paper() {
    // §5.4.2 at high overlap: MPT achieves the highest dedup ratio; MBT the
    // lowest of the three SIRI structures.
    let ycsb = YcsbConfig::default();
    let init = ycsb.dataset(2_000);
    let loads = ycsb.collaboration(4, 4_000, 90);

    let run = |name: &str, sets: &mut Vec<PageSet>, mut idx_fn: Box<dyn FnMut() -> PageSet>| {
        let _ = name;
        sets.push(idx_fn());
    };
    let _ = run; // macro below is clearer

    macro_rules! dedup_of {
        ($factory:expr) => {{
            let store = siri::env_store();
            let factory = $factory;
            let mut sets = Vec::new();
            for load in &loads {
                let mut idx = factory.empty(store.clone());
                idx.batch_insert(init.clone()).unwrap();
                for chunk in load.chunks(1_000) {
                    idx.batch_insert(chunk.to_vec()).unwrap();
                }
                sets.push(idx.page_set());
            }
            metrics::deduplication_ratio(&sets)
        }};
    }

    let pos = dedup_of!(PosFactory(PosParams::default()));
    let mpt = dedup_of!(MptFactory);
    let mbt = dedup_of!(MbtFactory { buckets: 256, fanout: 8 });
    let mvmb = dedup_of!(MvmbFactory(MvmbParams::default()));

    assert!(mpt > pos, "paper: MPT highest dedup ratio (mpt={mpt:.3} pos={pos:.3})");
    assert!(pos > mbt, "paper: POS beats MBT (pos={pos:.3} mbt={mbt:.3})");
    assert!(pos >= mvmb - 0.05, "paper: POS ≥ baseline (pos={pos:.3} mvmb={mvmb:.3})");
    assert!(mpt > 0.5, "high overlap must share a lot, got {mpt:.3}");
}

#[test]
fn table3_parameter_trends() {
    // POS: larger nodes ⇒ lower η. (Table 3, left.)
    let eta_pos = |node: usize| {
        let f = PosFactory(PosParams::default().with_node_bytes(node));
        let (v1, v2) = two_versions(&f, 4_000, 0.1);
        metrics::deduplication_ratio(&[v1, v2])
    };
    assert!(eta_pos(512) > eta_pos(4096), "η(POS) must fall with node size");

    // MBT: more buckets ⇒ higher η. (Table 3, middle.)
    let eta_mbt = |buckets: usize| {
        let f = MbtFactory { buckets, fanout: 8 };
        let (v1, v2) = two_versions(&f, 4_000, 0.1);
        metrics::deduplication_ratio(&[v1, v2])
    };
    assert!(eta_mbt(1024) > eta_mbt(64), "η(MBT) must rise with bucket count");
}

#[test]
fn version_store_branches_and_rolls_back() {
    let ycsb = YcsbConfig::default();
    let mut idx = PosTree::from_factory();
    let mut vs: VersionStore<siri::PosTree> = VersionStore::new();
    idx.batch_insert(ycsb.dataset(500)).unwrap();
    vs.commit("main", &idx, "v0");
    for v in 1..=5u32 {
        idx.batch_insert((0..50u64).map(|i| ycsb.entry(i, v)).collect()).unwrap();
        vs.commit("main", &idx, format!("v{v}"));
    }
    assert_eq!(vs.history("main").len(), 6);

    vs.branch("fix", "main");
    let tag = vs.rollback("fix", 3).unwrap();
    let old = vs.get(tag).unwrap().index.clone();
    assert_eq!(old.get(&ycsb.key(7)).unwrap().unwrap(), ycsb.value(7, 2));
    // main unaffected.
    assert_eq!(
        vs.head("main").unwrap().index.get(&ycsb.key(7)).unwrap().unwrap(),
        ycsb.value(7, 5)
    );
    // Diff across branches works at the version level.
    let d = vs.diff_branches("main", "fix").unwrap();
    assert_eq!(d.len(), 50);
}

/// Helper so the test reads naturally.
trait FromFactory {
    fn from_factory() -> siri::PosTree;
}
impl FromFactory for siri::PosTree {
    fn from_factory() -> siri::PosTree {
        siri::PosTree::new(siri::env_store(), PosParams::default())
    }
}
use siri::PosTree;

#[test]
fn figure1_shape_raw_vs_dedup() {
    // Raw storage grows ~linearly with versions; deduplicated grows by the
    // delta only — the motivation plot.
    let ycsb = YcsbConfig::default();
    let mut idx = PosTree::from_factory();
    idx.batch_insert(ycsb.dataset(3_000)).unwrap();
    let mut raw = 0u64;
    let mut union = PageSet::new();
    let mut raw_points = Vec::new();
    let mut dedup_points = Vec::new();
    for v in 1..=10u32 {
        idx.batch_insert((0..100u64).map(|i| ycsb.entry(i * 7 % 3_000, v)).collect()).unwrap();
        let pages = idx.page_set();
        raw += pages.byte_size();
        union.union_with(&pages);
        raw_points.push(raw);
        dedup_points.push(union.byte_size());
    }
    let raw_growth = raw_points[9] as f64 / raw_points[0] as f64;
    let dedup_growth = dedup_points[9] as f64 / dedup_points[0] as f64;
    assert!(raw_growth > 8.0, "raw must grow ~10x over 10 versions, got {raw_growth:.1}");
    // Scattered updates rewrite paths, so dedup still grows — but far
    // slower than raw (the Figure 1 gap).
    assert!(
        dedup_growth < raw_growth * 0.5,
        "dedup growth {dedup_growth:.1} must be well below raw {raw_growth:.1}"
    );
}
