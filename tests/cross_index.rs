//! Cross-index behavioural equivalence: all four structures must agree on
//! the *content* of any workload, whatever their internal shape — plus the
//! executable SIRI property checks of Definition 3.1.

use siri::workloads::YcsbConfig;
use siri::{
    siri_properties, Entry, IndexFactory, MbtFactory, MptFactory, MvmbFactory, MvmbParams,
    PosFactory, PosParams, SiriIndex,
};

fn dataset(n: usize) -> Vec<Entry> {
    YcsbConfig::default().dataset(n)
}

fn build<F: IndexFactory>(factory: &F, entries: &[Entry]) -> F::Index {
    let mut idx = factory.empty(siri::env_store());
    idx.batch_insert(entries.to_vec()).unwrap();
    idx
}

fn check_content<I: SiriIndex>(idx: &I, entries: &[Entry]) {
    let mut sorted = entries.to_vec();
    sorted.sort();
    assert_eq!(idx.scan().unwrap(), sorted, "{} scan mismatch", idx.kind());
    assert_eq!(idx.len().unwrap(), sorted.len());
    for e in sorted.iter().step_by(97) {
        assert_eq!(idx.get(&e.key).unwrap().as_ref(), Some(&e.value), "{}", idx.kind());
    }
    assert_eq!(idx.get(b"\xff\xff definitely absent").unwrap(), None);
}

#[test]
fn all_indexes_agree_on_content() {
    let entries = dataset(3_000);
    check_content(&build(&PosFactory(PosParams::default()), &entries), &entries);
    check_content(&build(&MptFactory, &entries), &entries);
    check_content(&build(&MbtFactory { buckets: 256, fanout: 8 }, &entries), &entries);
    check_content(&build(&MvmbFactory(MvmbParams::default()), &entries), &entries);
}

#[test]
#[allow(unused_assignments)] // macro writes `reference` on the first expansion only
fn all_indexes_agree_on_diffs() {
    let base = dataset(2_000);
    let ycsb = YcsbConfig::default();
    let changes: Vec<Entry> = (0..40u64).map(|i| ycsb.entry(i * 31 % 2_000, 1)).collect();

    // The diff of (base, base+changes) must be identical across structures.
    let mut reference: Option<Vec<(bytes::Bytes, bool)>> = None;
    macro_rules! check {
        ($factory:expr) => {{
            let a = build(&$factory, &base);
            let mut b = a.clone();
            b.batch_insert(changes.clone()).unwrap();
            let mut d: Vec<(bytes::Bytes, bool)> =
                a.diff(&b).unwrap().into_iter().map(|x| (x.key, x.left.is_some())).collect();
            d.sort();
            match &reference {
                None => reference = Some(d),
                Some(r) => assert_eq!(&d, r, "{} diff mismatch", $factory.name()),
            }
        }};
    }
    check!(PosFactory(PosParams::default()));
    check!(MptFactory);
    check!(MbtFactory { buckets: 256, fanout: 8 });
    check!(MvmbFactory(MvmbParams::default()));
}

#[test]
fn siri_structures_are_structurally_invariant_baseline_is_not() {
    let entries = dataset(400);

    let store = siri::env_store();
    assert!(siri_properties::check_structurally_invariant(
        || PosFactory(PosParams::default()).empty(store.clone()),
        &entries,
        4
    )
    .unwrap());

    let store = siri::env_store();
    assert!(siri_properties::check_structurally_invariant(
        || MptFactory.empty(store.clone()),
        &entries,
        4
    )
    .unwrap());

    let store = siri::env_store();
    assert!(siri_properties::check_structurally_invariant(
        || MbtFactory { buckets: 64, fanout: 4 }.empty(store.clone()),
        &entries,
        4
    )
    .unwrap());

    // The baseline is *expected* to fail: order-dependent splits.
    let store = siri::env_store();
    assert!(!siri_properties::check_structurally_invariant(
        || MvmbFactory(MvmbParams::default()).empty(store.clone()),
        &entries,
        4
    )
    .unwrap());
}

#[test]
fn recursively_identical_scores_high_for_all_tree_indexes() {
    let entries = dataset(300);
    macro_rules! score {
        ($factory:expr) => {{
            let store = siri::env_store();
            let f = $factory;
            siri_properties::recursively_identical_score(|| f.empty(store.clone()), &entries)
                .unwrap()
        }};
    }
    // Copy-on-write trees overwhelmingly reuse pages on single inserts.
    assert!(score!(PosFactory(PosParams::default())) > 0.9);
    assert!(score!(MptFactory) > 0.9);
    assert!(score!(MbtFactory { buckets: 64, fanout: 4 }) > 0.9);
    assert!(score!(MvmbFactory(MvmbParams::default())) > 0.9);
}

#[test]
fn universally_reusable_holds() {
    let entries = dataset(500);
    let extra = YcsbConfig::default().dataset(600)[500..].to_vec();
    macro_rules! check {
        ($factory:expr) => {{
            let idx = build(&$factory, &entries);
            assert!(
                siri_properties::check_universally_reusable(&idx, &extra).unwrap(),
                "{}",
                idx.kind()
            );
        }};
    }
    check!(PosFactory(PosParams::default()));
    check!(MptFactory);
    check!(MbtFactory { buckets: 64, fanout: 4 });
    check!(MvmbFactory(MvmbParams::default()));
}

#[test]
fn copy_on_write_preserves_arbitrary_version_history() {
    // Ten versions of each structure; every historical version must stay
    // exactly readable.
    let ycsb = YcsbConfig::default();
    macro_rules! check {
        ($factory:expr) => {{
            let factory = $factory;
            let mut idx = factory.empty(siri::env_store());
            let mut snapshots = Vec::new();
            for v in 0..10u32 {
                let batch: Vec<Entry> = (0..200u64).map(|i| ycsb.entry(i, v)).collect();
                idx.batch_insert(batch).unwrap();
                snapshots.push((v, idx.clone()));
            }
            for (v, snap) in &snapshots {
                let expect = ycsb.value(7, *v);
                assert_eq!(
                    snap.get(&ycsb.key(7)).unwrap().unwrap(),
                    expect,
                    "{} version {v}",
                    snap.kind()
                );
            }
        }};
    }
    check!(PosFactory(PosParams::default()));
    check!(MptFactory);
    check!(MbtFactory { buckets: 64, fanout: 4 });
    check!(MvmbFactory(MvmbParams::default()));
}
