//! Runtime lock-order tracker battery (ISSUE 7).
//!
//! The vendored `parking_lot` shim assigns classed locks a position in the
//! engine's documented acquisition order (branch map → slot head → client
//! view → store internals, DESIGN.md §9) and — in debug builds with
//! `SIRI_LOCK_ORDER=1` — panics the moment any thread acquires a
//! lower-order lock while holding a higher-order guard.
//!
//! This suite proves both directions:
//!
//! * a deliberately inverted acquisition panics with a diagnostic naming
//!   both classes (the detector detects);
//! * the real engine — commit, merge, fork, delete_branch and group-commit
//!   interleavings — runs clean with the tracker armed (the engine honors
//!   its own order, and the tracker is silent on legal schedules);
//! * `SIRI_MAX_COMMIT_ATTEMPTS` (the satellite env override) bounds the
//!   optimistic publish loop, proven by forcing `CommitContention`
//!   deterministically with a store hook that commits a competing batch
//!   every time the victim's build writes a page.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex as StdMutex, Once, Weak};

use parking_lot::{lock_order, LockClass, Mutex, RwLock};
use siri::{
    max_commit_attempts, Bytes, FileStoreOptions, Forkbase, FsyncPolicy, Hash, IndexError,
    MergeStrategy, NodeStore, PosFactory, PosParams, ShardingPolicy, SharedStore, SiriIndex,
    StoreResult, StoreStats, WriteBatch,
};

/// Arm the tracker and pin the commit-attempt bound before any classed lock
/// or publish loop runs in this process. Both knobs are read once through
/// `OnceLock`s, so they must be set before first use; every test calls this
/// first.
fn init() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        std::env::set_var("SIRI_LOCK_ORDER", "1");
        std::env::set_var("SIRI_MAX_COMMIT_ATTEMPTS", "3");
    });
}

fn factory() -> PosFactory {
    PosFactory(PosParams::default())
}

fn batch(tag: &str, k: usize) -> WriteBatch {
    let mut b = WriteBatch::new();
    for i in 0..10 {
        b.put(format!("{tag}-k{k:04}-{i}").into_bytes(), format!("v-{tag}-{k}-{i}").into_bytes());
    }
    b
}

// ---------------------------------------------------------------------------
// The detector detects: a deliberate inversion panics.
// ---------------------------------------------------------------------------

#[test]
fn deliberately_inverted_acquisition_panics() {
    init();
    if !cfg!(debug_assertions) {
        return; // tracker is compiled down to a constant-false in release
    }
    assert!(lock_order::is_active(), "init() must arm the tracker");

    static LOW: LockClass = LockClass::new(1, "test.low");
    static HIGH: LockClass = LockClass::new(9, "test.high");
    let low = Mutex::with_class(0u32, &LOW);
    let high = RwLock::with_class(0u32, &HIGH);

    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _h = high.read();
        let _l = low.lock(); // lower order while higher is held: inversion
    }))
    .expect_err("inverted acquisition must panic under SIRI_LOCK_ORDER=1");

    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("lock-order violation"), "unexpected panic message: {msg}");
    assert!(msg.contains("test.low") && msg.contains("test.high"), "message names both: {msg}");
}

#[test]
fn ascending_order_and_try_lock_stay_silent() {
    init();
    static A: LockClass = LockClass::new(2, "test.a");
    static B: LockClass = LockClass::new(4, "test.b");
    let a = RwLock::with_class(1u32, &A);
    let b = Mutex::with_class(2u32, &B);

    // Ascending acquisition is the contract.
    {
        let ga = a.write();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
    }
    // try_lock never blocks, so it is allowed to succeed against the order
    // without panicking — it cannot complete a deadlock cycle on its own.
    {
        let ga = a.write();
        let gb = b.lock();
        drop(gb);
        drop(ga);
        static LOWER: LockClass = LockClass::new(1, "test.lower");
        let lower = Mutex::with_class(3u32, &LOWER);
        let gb = b.lock();
        let gl = lower.try_lock().expect("uncontended try_lock succeeds");
        assert_eq!(*gl + *gb, 5);
    }
}

// ---------------------------------------------------------------------------
// The engine is clean: commit/merge/fork/delete interleavings under the
// armed tracker.
// ---------------------------------------------------------------------------

#[test]
fn engine_commit_merge_fork_delete_interleavings_run_clean() {
    init();
    let fb = Arc::new(Forkbase::with_store(factory(), siri::env_store(), 0));
    const WRITERS: usize = 4;
    const COMMITS: usize = 6;

    for t in 0..WRITERS {
        fb.fork("master", &format!("b{t}")).unwrap();
    }

    std::thread::scope(|s| {
        // Writers: each commits to its own branch (disjoint heads, so the
        // pinned 3-attempt bound can never trip).
        for t in 0..WRITERS {
            let fb = Arc::clone(&fb);
            s.spawn(move || {
                let branch = format!("b{t}");
                for k in 0..COMMITS {
                    fb.commit(&branch, batch(&format!("w{t}"), k)).unwrap();
                }
            });
        }
        // Merger: repeatedly merges writer branches into master while the
        // writers are still committing — exercising slot resolution,
        // cross-slot head reads and the CAS publish together.
        {
            let fb = Arc::clone(&fb);
            s.spawn(move || {
                for round in 0..3 {
                    for t in 0..WRITERS {
                        fb.merge_branches("master", &format!("b{t}"), MergeStrategy::PreferRight)
                            .unwrap();
                    }
                    let _ = round;
                }
            });
        }
        // Churner: forks and deletes short-lived branches, racing the
        // branch-map lock against everyone else's slot locks.
        {
            let fb = Arc::clone(&fb);
            s.spawn(move || {
                for i in 0..20 {
                    let name = format!("tmp{i}");
                    fb.fork("master", &name).unwrap();
                    let _ = fb.commit(&name, batch("tmp", i));
                    fb.delete_branch(&name).unwrap();
                }
            });
        }
        // Readers: client views (view mutex under branch-map read) on the
        // moving branches.
        {
            let fb = Arc::clone(&fb);
            s.spawn(move || {
                for i in 0..200 {
                    let branch = format!("b{}", i % WRITERS);
                    let _ = fb.get(&branch, format!("w0-k0000-{}", i % 10).as_bytes());
                }
            });
        }
    });

    // Every writer branch must hold exactly its own commits' records.
    for t in 0..WRITERS {
        let head = fb.head(&format!("b{t}")).unwrap();
        assert_eq!(head.len().unwrap(), COMMITS * 10);
    }
    // The in-flight merge rounds saw arbitrary prefixes of each writer's
    // commits (on a loaded box possibly none — the merger can drain its
    // rounds before a writer is scheduled). One final quiescent merge per
    // branch makes the content check deterministic: master must now hold
    // every writer's records.
    for t in 0..WRITERS {
        fb.merge_branches("master", &format!("b{t}"), MergeStrategy::PreferRight).unwrap();
        let probe = format!("w{t}-k0000-0");
        assert!(
            fb.get("master", probe.as_bytes()).unwrap().is_some(),
            "master lost writer {t}'s merged records"
        );
    }
}

#[test]
fn sharded_commit_merge_delete_interleavings_run_clean() {
    // ISSUE 8: the sharded head adds the `forkbase.shard-head` class (25)
    // between the slot head (20) and the client view (30). This
    // interleaving drives every acquisition pattern the sharded engine
    // has — routed commits (20r → 25r builds, then 20w → 25w swaps),
    // spanning batches, whole-branch merges (collapse reads under 20r),
    // split/merge resharding, branch deletion's atomic retirement, and
    // routed client reads (20r → 30) — under the armed tracker and the
    // pinned 3-attempt bound.
    init();
    const SHARDS: usize = 4;
    let fb = Arc::new(Forkbase::with_sharding(
        factory(),
        siri::env_store(),
        ShardingPolicy::pinned(SHARDS),
        0,
    ));
    // Writers confined to their own shard: the 3-attempt bound can never
    // trip, because disjoint shards never lose a CAS race.
    std::thread::scope(|s| {
        for t in 0..SHARDS {
            let fb = Arc::clone(&fb);
            s.spawn(move || {
                let lead = (t * 64 + 1) as u8;
                for k in 0..6usize {
                    let mut b = WriteBatch::new();
                    for i in 0..10 {
                        let mut key = vec![lead];
                        key.extend_from_slice(format!("s{t}-k{k:04}-{i}").as_bytes());
                        b.put(key, format!("v-{t}-{k}-{i}").into_bytes());
                    }
                    fb.commit("master", b).unwrap();
                }
            });
        }
        // Churner: forks inherit the 4-shard partition; their commits,
        // reshard hooks and deletions interleave with master's writers.
        {
            let fb = Arc::clone(&fb);
            s.spawn(move || {
                for i in 0..10usize {
                    let name = format!("tmp{i}");
                    fb.fork("master", &name).unwrap();
                    let mut b = WriteBatch::new();
                    for shard in 0..SHARDS {
                        b.put(vec![(shard * 64 + 2) as u8, i as u8], vec![i as u8]);
                    }
                    let _ = fb.commit(&name, b); // spans every shard
                    let _ = fb.merge_branch_shards(&name, 0);
                    let _ = fb.split_branch_shard(&name, 0);
                    fb.delete_branch(&name).unwrap();
                }
            });
        }
        // Readers: routed gets and cross-shard range cursors (20r → 30,
        // then cursor reads through the caching store).
        {
            let fb = Arc::clone(&fb);
            s.spawn(move || {
                for i in 0..100usize {
                    let lead = ((i % SHARDS) * 64 + 1) as u8;
                    let mut key = vec![lead];
                    key.extend_from_slice(format!("s{}-k0000-0", i % SHARDS).as_bytes());
                    let _ = fb.get("master", &key);
                    if i % 10 == 0 {
                        let _ = fb
                            .range("master", std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)
                            .and_then(|c| c.collect::<siri::Result<Vec<_>>>());
                    }
                }
            });
        }
    });
    let stats = fb.engine_stats();
    assert_eq!(stats.conflicts, 0, "disjoint shards and branches must not contend");
    assert_eq!(fb.head("master").unwrap().len().unwrap(), SHARDS * 6 * 10);
}

#[test]
fn group_commit_interleavings_run_clean_under_tracker() {
    init();
    let dir =
        std::env::temp_dir().join("siri-lock-order").join(format!("group-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = FileStoreOptions {
        fsync: FsyncPolicy::Group(std::time::Duration::from_millis(1)),
        ..FileStoreOptions::default()
    };
    let fb = Arc::new(Forkbase::new_durable(factory(), &dir, opts, 0).unwrap());
    const WRITERS: usize = 4;
    for t in 0..WRITERS {
        fb.fork("master", &format!("g{t}")).unwrap();
    }
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let fb = Arc::clone(&fb);
            s.spawn(move || {
                let branch = format!("g{t}");
                for k in 0..4 {
                    // Ack implies fsync coverage; the group path couples the
                    // appender mutex, the index/readers rwlocks and the
                    // (untracked, std) condvar state machine.
                    fb.commit(&branch, batch(&format!("g{t}"), k)).unwrap();
                }
            });
        }
    });
    for t in 0..WRITERS {
        assert_eq!(fb.head(&format!("g{t}")).unwrap().len().unwrap(), 4 * 10);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// SIRI_MAX_COMMIT_ATTEMPTS: deterministic CommitContention.
// ---------------------------------------------------------------------------

/// A store wrapper that, when armed, publishes a competing commit to the
/// victim branch every time a page is written through it — so an optimistic
/// publish loop loses its CAS race on every attempt, deterministically.
/// The reentrancy flag keeps the competing commit's own writes from
/// re-triggering the hook (which would recurse forever).
struct ContentionStore {
    inner: SharedStore,
    engine: StdMutex<Option<Weak<Forkbase<PosFactory>>>>,
    armed: AtomicBool,
    firing: AtomicBool,
    fired: AtomicUsize,
}

impl ContentionStore {
    fn new(inner: SharedStore) -> Self {
        ContentionStore {
            inner,
            engine: StdMutex::new(None),
            armed: AtomicBool::new(false),
            firing: AtomicBool::new(false),
            fired: AtomicUsize::new(0),
        }
    }

    fn maybe_fire(&self) {
        if !self.armed.load(Ordering::Acquire) {
            return;
        }
        if self.firing.swap(true, Ordering::AcqRel) {
            return; // a competing commit is already in flight on this store
        }
        let engine = self.engine.lock().unwrap().clone().and_then(|w| w.upgrade());
        if let Some(fb) = engine {
            let n = self.fired.fetch_add(1, Ordering::Relaxed);
            fb.commit("master", batch("rival", n)).unwrap();
        }
        self.firing.store(false, Ordering::Release);
    }
}

impl NodeStore for ContentionStore {
    fn try_put(&self, page: Bytes) -> StoreResult<Hash> {
        self.maybe_fire();
        self.inner.try_put(page)
    }
    fn try_get(&self, hash: &Hash) -> StoreResult<Option<Bytes>> {
        self.inner.try_get(hash)
    }
    fn try_put_raw(&self, page: &[u8]) -> StoreResult<Hash> {
        self.maybe_fire();
        self.inner.try_put_raw(page)
    }
    fn try_put_many(&self, pages: &[Bytes]) -> StoreResult<Vec<Hash>> {
        self.maybe_fire();
        self.inner.try_put_many(pages)
    }
    fn contains(&self, hash: &Hash) -> bool {
        self.inner.contains(hash)
    }
    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }
}

#[test]
fn env_bounded_commit_attempts_force_deterministic_contention() {
    init();
    assert_eq!(
        max_commit_attempts(),
        3,
        "SIRI_MAX_COMMIT_ATTEMPTS=3 must override the default bound"
    );

    let hook = Arc::new(ContentionStore::new(siri::MemStore::new_shared()));
    let store: SharedStore = hook.clone();
    let fb = Arc::new(Forkbase::with_store(factory(), store, 0));
    *hook.engine.lock().unwrap() = Some(Arc::downgrade(&fb));

    // Sanity: unarmed, commits go through.
    fb.commit("master", batch("setup", 0)).unwrap();

    // Armed: every page write of the victim's build publishes a rival
    // commit first, so all 3 permitted attempts lose their CAS race.
    hook.armed.store(true, Ordering::Release);
    let err = fb.commit("master", batch("victim", 0)).unwrap_err();
    hook.armed.store(false, Ordering::Release);

    match err {
        IndexError::CommitContention { attempts } => {
            assert_eq!(attempts, 3, "the env-pinned bound is the reported attempt count");
        }
        other => panic!("expected CommitContention, got {other:?}"),
    }
    assert!(hook.fired.load(Ordering::Relaxed) >= 3, "a rival commit per attempt");
    assert!(fb.engine_stats().conflicts >= 3, "every lost race is counted");

    // The branch stays healthy: with the hook disarmed the next commit
    // lands on top of whichever rival head won.
    fb.commit("master", batch("after", 0)).unwrap();
    assert!(fb.get("master", b"after-k0000-0").unwrap().is_some());
}

// ---------------------------------------------------------------------------
// Telemetry: the recorded acquisition graph respects the class order.
// ---------------------------------------------------------------------------

#[test]
fn recorded_acquisition_edges_are_ascending() {
    init();
    if !lock_order::is_active() {
        return;
    }
    // Drive a little real engine traffic so engine/store edges exist.
    let fb = Forkbase::with_store(factory(), siri::env_store(), 0);
    fb.commit("master", batch("edges", 0)).unwrap();
    let _ = fb.get("master", b"edges-k0000-0");

    for ((from_order, from_name), (to_order, to_name)) in lock_order::edges() {
        // Test-local classes above deliberately invert; engine/store
        // classes (the `forkbase.`/`store.` namespaces) never may.
        let project = |n: &str| n.starts_with("forkbase.") || n.starts_with("store.");
        if project(from_name) && project(to_name) {
            assert!(
                from_order <= to_order,
                "observed inverted edge {from_name}({from_order}) -> {to_name}({to_order})"
            );
        }
    }
}
