//! Known-bad fixture: `fallible-store` violations — panicking store sugar
//! instead of the `try_*` methods. Both receiver spellings must flag.

pub fn write(store: &dyn NodeStore, page: Bytes) -> Hash {
    store.put(page)
}

pub fn read(node_store: &MemStore, h: &Hash) -> Option<Bytes> {
    node_store.get(h)
}
