//! Known-bad fixture: an `unsafe` block with no justifying comment
//! anywhere near it must flag.

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
