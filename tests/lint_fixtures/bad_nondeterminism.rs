//! Known-bad fixture: `determinism` violations — wall clock and OS
//! randomness in what the strict profile treats as a digest/encode path.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn entropy() -> u64 {
    let _ = std::time::SystemTime::now();
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
