//! Known-bad fixture: `lock-order` violation — the branch map is acquired
//! while a client-view guard is still live, the inversion that can deadlock
//! against `reset_client` (which takes branch map, then view).

impl Engine {
    pub fn wrong(&self) {
        let view = self.view.lock();
        let map = self.branches.read();
        let _ = (view, map);
    }
}
