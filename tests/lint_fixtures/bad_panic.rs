//! Known-bad fixture: `no-panic` violations in non-test code.
//! Each of the three bodies below must produce exactly one finding.

pub fn first(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn second(r: Result<u32, String>) -> u32 {
    r.expect("boom")
}

pub fn third() -> ! {
    panic!("unreachable by design")
}
