//! Known-good fixture: exercises the happy path of every strict rule and
//! must produce zero findings.

pub fn checked(v: Option<u32>) -> Option<u32> {
    v.map(|x| x + 1)
}

pub fn store_discipline(store: &dyn NodeStore, page: Bytes) -> StoreResult<Hash> {
    store.try_put(page)
}

pub fn documented_unsafe(v: &[u8]) -> u8 {
    // SAFETY: callers guarantee `v` is non-empty; checked at every call
    // site before entering this fast path.
    unsafe { *v.get_unchecked(0) }
}

impl Engine {
    /// Ascending acquisition (branch map before slot head) is the contract.
    pub fn ascending(&self) {
        let map = self.branches.read();
        let head = self.head.write();
        let _ = (map, head);
    }

    /// Dropping the view guard first makes the branch-map read legal.
    pub fn resequenced(&self) {
        let view = self.view.lock();
        drop(view);
        let map = self.branches.read();
        let _ = map;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_test_code() {
        Some(1).unwrap();
        assert!(std::panic::catch_unwind(|| panic!("tests may panic")).is_err());
    }
}
