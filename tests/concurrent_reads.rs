//! Concurrency coverage for the lock-free read path and the shared
//! decoded-node cache (ISSUE 1 satellite): many readers over one store +
//! cache must agree with the single-threaded truth, and the store/cache
//! counters must stay coherent. Plus a property test pinning cached and
//! uncached lookups to each other for every index structure.

use std::sync::Arc;
use std::thread;

use proptest::prelude::*;
use siri::workloads::YcsbConfig;
use siri::{
    Entry, Forkbase, IndexFactory, MbtFactory, MerklePatriciaTrie, MptFactory, MvmbFactory,
    MvmbParams, PosFactory, PosParams, PosTree, SiriIndex,
};

const N: usize = 5_000;
const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 2_000;

/// Shared-store, shared-cache stress: every thread hammers point lookups
/// (plus periodic scans) against clones of one handle while asserting
/// values, then the counters are checked for coherence.
fn stress<I: SiriIndex + 'static>(index: I, label: &str) {
    let index = Arc::new(index);
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let index = Arc::clone(&index);
        handles.push(thread::spawn(move || {
            let ycsb = YcsbConfig::default();
            // Each clone shares the store and the node cache.
            let reader = (*index).clone();
            for i in 0..OPS_PER_THREAD {
                let id = ((t * 2_654_435_761) ^ (i * 40_503)) as u64 % N as u64;
                let got = reader.get(&ycsb.key(id)).expect("get failed");
                assert_eq!(
                    got.as_deref(),
                    Some(ycsb.value(id, 0).as_ref()),
                    "thread {t} op {i}: wrong value for id {id}"
                );
                // Absent keys stay absent under concurrency.
                if i % 512 == 0 {
                    assert!(reader.get(b"\xff\xff absent key").unwrap().is_none());
                }
            }
            // One full scan per thread: ordered, complete, stable.
            let scan = reader.scan().expect("scan failed");
            assert_eq!(scan.len(), N);
            assert!(scan.windows(2).all(|w| w[0].key < w[1].key));
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let stats = index.store().stats();
    assert_eq!(stats.gets, stats.hits, "{label}: every page the index asked for exists");
    // The absent-key probes never reach the store (the trees' structure
    // answers them), so gets simply count real page loads; the counter
    // must not have torn or lost updates (it is monotone and exact).
    assert!(stats.puts > 0 && stats.unique_pages > 0, "{label}: build accounted");
}

#[test]
fn concurrent_reads_pos_tree() {
    let ycsb = YcsbConfig::default();
    let mut t = PosTree::new(siri::env_store(), PosParams::default());
    t.batch_insert(ycsb.dataset(N)).unwrap();
    let before = t.node_cache_stats();
    stress(t.clone(), "pos-tree");
    let after = t.node_cache_stats();
    let probes = (after.hits - before.hits) + (after.misses - before.misses);
    assert!(probes > 0, "readers must go through the node cache");
    assert!(after.hits > before.hits, "a hot working set must produce cache hits");
    assert!(after.len <= after.capacity.max(1), "cache respects its bound");
}

#[test]
fn concurrent_reads_mpt() {
    let ycsb = YcsbConfig::default();
    let mut t = MerklePatriciaTrie::new(siri::env_store());
    t.batch_insert(ycsb.dataset(N)).unwrap();
    stress(t.clone(), "mpt");
    let cache = t.node_cache_stats();
    assert!(cache.hits > 0);
    assert!(cache.len <= cache.capacity);
}

#[test]
fn concurrent_readers_with_concurrent_version_writer() {
    // Readers pinned to a snapshot must be wait-free with respect to a
    // writer producing new versions into the same store + cache: the
    // snapshot's answers never change.
    let ycsb = YcsbConfig::default();
    let mut base = PosTree::new(siri::env_store(), PosParams::default());
    base.batch_insert(ycsb.dataset(N)).unwrap();
    let snapshot = base.clone();

    let writer = {
        let mut head = base.clone();
        thread::spawn(move || {
            for round in 1..=20u32 {
                let batch: Vec<Entry> =
                    (0..200u64).map(|i| ycsb.entry(i * 17 % N as u64, round)).collect();
                head.batch_insert(batch).unwrap();
            }
            head.root()
        })
    };

    let mut readers = Vec::new();
    for t in 0..4 {
        let snap = snapshot.clone();
        readers.push(thread::spawn(move || {
            let ycsb = YcsbConfig::default();
            for i in 0..1_000usize {
                let id = ((t * 131 + i) % N) as u64;
                let got = snap.get(&ycsb.key(id)).unwrap();
                assert_eq!(got.as_deref(), Some(ycsb.value(id, 0).as_ref()));
            }
        }));
    }
    for r in readers {
        r.join().unwrap();
    }
    let new_root = writer.join().unwrap();
    assert_ne!(new_root, snapshot.root(), "writer advanced the head");
    // Snapshot still answers from its version after the writer finished.
    assert_eq!(snapshot.get(&ycsb.key(0)).unwrap().as_deref(), Some(ycsb.value(0, 0).as_ref()));
}

#[test]
fn concurrent_branch_readers_use_disjoint_view_locks() {
    // Regression for the whole-map `client_views: Mutex<HashMap>`: reads
    // of different branches used to serialize on one engine-wide lock.
    // Views now live one per branch slot, so readers pinned to different
    // branches touch disjoint locks while a writer advances every head
    // under them. Correctness here, lock granularity by construction (the
    // per-slot mutex is held only to clone the handle out).
    const BRANCHES: usize = 6;
    const RECORDS: usize = 400;
    let stress: usize =
        std::env::var("STRESS_N").ok().and_then(|v| v.parse().ok()).unwrap_or(1).max(1);
    let fb = Arc::new(Forkbase::with_store(PosFactory(PosParams::default()), siri::env_store(), 0));
    for b in 0..BRANCHES {
        let branch = format!("b{b}");
        fb.fork("master", &branch).unwrap();
        let data: Vec<Entry> = (0..RECORDS)
            .map(|i| {
                Entry::new(format!("b{b}-k{i:04}").into_bytes(), format!("v{b}-{i}").into_bytes())
            })
            .collect();
        fb.put(&branch, data).unwrap();
    }

    thread::scope(|s| {
        // One writer commits fresh keys round-robin across every branch:
        // heads keep moving while the readers' views re-root in place.
        let writer = {
            let fb = Arc::clone(&fb);
            s.spawn(move || {
                for round in 0..40 * stress {
                    let branch = format!("b{}", round % BRANCHES);
                    let e = Entry::new(
                        format!("new-{round:05}").into_bytes(),
                        format!("nv{round}").into_bytes(),
                    );
                    fb.put(&branch, vec![e]).unwrap();
                }
            })
        };
        for b in 0..BRANCHES {
            let fb = Arc::clone(&fb);
            s.spawn(move || {
                let branch = format!("b{b}");
                for i in 0..800 * stress {
                    let id = (i * 37) % RECORDS;
                    let key = format!("b{b}-k{id:04}");
                    // The initial records are immutable under the writer's
                    // append-only churn: every read must see them.
                    let got = fb.get(&branch, key.as_bytes()).unwrap();
                    assert_eq!(
                        got.as_deref(),
                        Some(format!("v{b}-{id}").as_bytes()),
                        "branch {branch} read {i} went wrong"
                    );
                    if i % 200 == 0 {
                        let pre: Vec<Entry> = fb
                            .scan_prefix(&branch, format!("b{b}-k000").as_bytes())
                            .unwrap()
                            .collect::<siri::Result<_>>()
                            .unwrap();
                        assert_eq!(pre.len(), 10, "prefix scan on a moving head");
                    }
                }
            });
        }
        writer.join().unwrap();
    });

    // Every branch converged: original records plus its share of new ones.
    for b in 0..BRANCHES {
        let head = fb.head(&format!("b{b}")).unwrap();
        assert!(head.len().unwrap() > RECORDS, "writer's commits must be visible at the end");
    }
    assert_eq!(fb.engine_stats().conflicts, 0, "distinct branches: no CAS conflicts");
}

fn to_entries(raw: &[(Vec<u8>, Vec<u8>)]) -> Vec<Entry> {
    raw.iter().map(|(k, v)| Entry::new(k.clone(), v.clone())).collect()
}

fn arb_entries(max: usize) -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(proptest::num::u8::ANY, 1..6),
            proptest::collection::vec(proptest::num::u8::ANY, 0..24),
        ),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Cached and uncached lookups agree on every key (present and absent)
    /// for all four structures — the cache must be invisible to semantics.
    #[test]
    fn cached_and_uncached_lookups_agree(raw in arb_entries(100)) {
        let entries = to_entries(&raw);

        macro_rules! check {
            ($factory:expr, $disable:expr) => {{
                let store = siri::env_store();
                let mut cached = $factory.empty(store);
                cached.batch_insert(entries.clone()).unwrap();
                let uncached = $disable(cached.clone());
                for (k, _) in &raw {
                    prop_assert_eq!(cached.get(k).unwrap(), uncached.get(k).unwrap());
                    // Re-probe: the second cached read is served from the
                    // node cache and must still agree.
                    prop_assert_eq!(cached.get(k).unwrap(), uncached.get(k).unwrap());
                }
                let absent: &[u8] = b"\xff\xff\xff nothing here";
                prop_assert_eq!(cached.get(absent).unwrap(), None);
                prop_assert_eq!(uncached.get(absent).unwrap(), None);
                prop_assert_eq!(cached.scan().unwrap(), uncached.scan().unwrap());
            }};
        }
        check!(PosFactory(PosParams::default()), |t: PosTree| t.with_node_cache_capacity(0));
        check!(MptFactory, |t: MerklePatriciaTrie| t.with_node_cache_capacity(0));
        check!(MbtFactory { buckets: 32, fanout: 4 }, |t: siri::MerkleBucketTree| t
            .with_node_cache_capacity(0));
        check!(MvmbFactory(MvmbParams::default()), |t: siri::MvmbTree| t
            .with_node_cache_capacity(0));
    }
}
