//! Multi-writer engine stress suite (ISSUE 5): the `&self`-concurrent
//! Forkbase must linearize commits.
//!
//! Three families:
//!
//! * **disjoint branches** — N writer threads, one branch each, on the
//!   `SIRI_STORE`-selected backend. Every final head must equal a
//!   single-threaded replay of the same batches (structural invariance
//!   makes the comparison exact: same surviving set ⇒ same root digest),
//!   and per-branch head slots mean zero CAS conflicts.
//! * **one contended branch** — many threads CAS-committing interleaved
//!   batches to `master`. The [`siri::CommitInfo`] receipts' `parent →
//!   root` edges must form one chain from the empty root to the final
//!   head, visiting every commit exactly once; replaying the batches in
//!   chain order on a sequential model must reproduce every intermediate
//!   root digest. That is linearizability made checkable.
//! * **group commit** — a durable engine under `FsyncPolicy::Group` must
//!   ack every commit while issuing strictly fewer fsyncs, and the acked
//!   roots must be fully readable after a reopen.
//!
//! `STRESS_N` multiplies the iteration counts (CI's stress job sets it).

use std::collections::HashMap;
use std::sync::Arc;

use siri::{
    CommitInfo, Entry, FileStoreOptions, Forkbase, FsyncPolicy, Hash, IndexError, IndexFactory,
    MemStore, PosFactory, PosParams, ShardingPolicy, SiriIndex, WriteBatch,
};

const BATCH: usize = 20;

fn stress_n() -> usize {
    std::env::var("STRESS_N").ok().and_then(|v| v.parse().ok()).unwrap_or(1).max(1)
}

fn factory() -> PosFactory {
    PosFactory(PosParams::default())
}

fn engine() -> Arc<Forkbase<PosFactory>> {
    Arc::new(Forkbase::with_store(factory(), siri::env_store(), 0))
}

/// An engine pinned to the classic single-slot head, regardless of
/// `SIRI_SHARDS` in the environment — for the chain-audit test, whose
/// `parent → root` receipts are compared against plain tree digests.
fn single_slot_engine() -> Arc<Forkbase<PosFactory>> {
    Arc::new(Forkbase::with_sharding(factory(), siri::env_store(), ShardingPolicy::single(), 0))
}

/// An engine pinned to a static `n`-shard partition.
fn sharded_engine(n: usize) -> Arc<Forkbase<PosFactory>> {
    Arc::new(Forkbase::with_sharding(factory(), siri::env_store(), ShardingPolicy::pinned(n), 0))
}

/// The deterministic batch writer `t` commits at step `k`: 20 fresh puts
/// plus (past the first step) one delete of an earlier key, so the replay
/// exercises the full write path, not just inserts. Keys are disjoint
/// across writers, making the contended test's expected final state
/// order-independent while the chain replay still checks exact order.
fn batch_for(t: usize, k: usize) -> WriteBatch {
    let mut b = WriteBatch::new();
    for i in 0..BATCH {
        b.put(
            format!("t{t:02}-k{:05}", k * BATCH + i).into_bytes(),
            format!("v{t}-{k}-{i}").into_bytes(),
        );
    }
    if k > 0 {
        b.delete(format!("t{t:02}-k{:05}", (k - 1) * BATCH).into_bytes());
    }
    b
}

/// Replay `batches` sequentially on a fresh in-memory index, returning the
/// root after each commit. The ground truth every concurrent schedule is
/// held against.
fn sequential_replay(batches: &[(usize, usize)]) -> Vec<Hash> {
    let mut model = factory().empty(MemStore::new_shared());
    batches.iter().map(|&(t, k)| model.commit(batch_for(t, k)).unwrap()).collect()
}

#[test]
fn disjoint_branch_writers_match_single_threaded_replay() {
    const WRITERS: usize = 6;
    let commits = 8 * stress_n();
    let fb = engine();
    for t in 0..WRITERS {
        fb.fork("master", &format!("b{t}")).unwrap();
    }
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let fb = Arc::clone(&fb);
            s.spawn(move || {
                let branch = format!("b{t}");
                for k in 0..commits {
                    fb.commit(&branch, batch_for(t, k)).unwrap();
                }
            });
        }
    });

    // Per-branch slots: writers on different branches never race a head.
    let stats = fb.engine_stats();
    assert_eq!(stats.commits, (WRITERS * commits) as u64);
    assert_eq!(stats.conflicts, 0, "disjoint branches must not contend");

    // Every head equals the single-threaded replay of its own batches.
    for t in 0..WRITERS {
        let replay: Vec<(usize, usize)> = (0..commits).map(|k| (t, k)).collect();
        let expected = *sequential_replay(&replay).last().unwrap();
        let head = fb.head(&format!("b{t}")).unwrap();
        assert_eq!(head.root(), expected, "branch b{t} diverged from its sequential replay");
        assert_eq!(head.len().unwrap(), commits * BATCH - (commits - 1));
    }
}

/// Reconstruct the head-commit order from the commit receipts: the
/// `parent → root` edges must chain from `start` through every commit
/// exactly once. Panics (with context) when the receipts do not form a
/// chain — which would mean two commits published over the same head.
fn chain_order(start: Hash, infos: &[(usize, usize, CommitInfo)]) -> Vec<(usize, usize)> {
    let mut by_parent: HashMap<Hash, (usize, usize, Hash)> = HashMap::new();
    for (t, k, info) in infos {
        let clash = by_parent.insert(info.parent, (*t, *k, info.root));
        assert!(clash.is_none(), "two commits claim the same parent head {:?}", info.parent);
    }
    let mut order = Vec::with_capacity(infos.len());
    let mut cur = start;
    while let Some((t, k, next)) = by_parent.remove(&cur) {
        order.push((t, k));
        cur = next;
    }
    assert!(by_parent.is_empty(), "commit receipts do not form a single chain");
    order
}

#[test]
fn contended_shared_branch_commits_linearize() {
    const WRITERS: usize = 8;
    let commits = 12 * stress_n();
    // Conflicts are scheduling-dependent; accumulate across rounds and
    // require at least one CAS retry overall so the retry path is known to
    // have run. Correctness is asserted in *every* round regardless; when
    // the scheduler happens to serialize the first rounds perfectly (most
    // plausible on a loaded single-core box), extra rounds run until a
    // race is observed, up to a generous cap.
    let mut total_conflicts = 0u64;
    let mut round = 0;
    while round < 3 || (total_conflicts == 0 && round < 12) {
        // Single-slot head on purpose: the chain audit equates receipt
        // digests with plain tree roots, which only holds unsharded.
        let fb = single_slot_engine();
        let infos: Vec<(usize, usize, CommitInfo)> = {
            let collected = std::sync::Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for t in 0..WRITERS {
                    let fb = Arc::clone(&fb);
                    let collected = &collected;
                    s.spawn(move || {
                        let mut mine = Vec::with_capacity(commits);
                        for k in 0..commits {
                            let info = fb.commit_with_info("master", batch_for(t, k)).unwrap();
                            mine.push((t, k, info));
                        }
                        collected.lock().unwrap().extend(mine);
                    });
                }
            });
            collected.into_inner().unwrap()
        };

        // Exactly once: every commit produced exactly one receipt, and the
        // receipts chain from the empty root to the final head.
        assert_eq!(infos.len(), WRITERS * commits);
        let head_root = fb.head("master").unwrap().root();
        let order = chain_order(Hash::ZERO, &infos);
        assert_eq!(order.len(), WRITERS * commits, "every commit must appear in the chain");

        // The sequential model, fed the batches in head-commit order, must
        // reproduce every intermediate root digest the engine published.
        let model_roots = sequential_replay(&order);
        let mut by_step: HashMap<(usize, usize), Hash> =
            infos.iter().map(|(t, k, info)| ((*t, *k), info.root)).collect();
        for (step, &(t, k)) in order.iter().enumerate() {
            assert_eq!(
                model_roots[step],
                by_step.remove(&(t, k)).unwrap(),
                "round {round}: root mismatch at chain step {step} (writer {t}, commit {k})"
            );
        }
        assert_eq!(*model_roots.last().unwrap(), head_root, "final head must match the model");

        let stats = fb.engine_stats();
        assert_eq!(stats.commits, (WRITERS * commits) as u64);
        total_conflicts += stats.conflicts;
        round += 1;
    }
    assert!(
        total_conflicts > 0,
        "8 writers x {commits} commits x {round} rounds on one branch produced no CAS retry",
    );
}

#[test]
fn group_commit_engine_acks_survive_reopen_with_fewer_fsyncs() {
    const WRITERS: usize = 4;
    let commits = 6 * stress_n();
    let dir = std::env::temp_dir()
        .join("siri-concurrent-writes")
        .join(format!("group-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = FileStoreOptions {
        fsync: FsyncPolicy::Group(std::time::Duration::from_millis(1)),
        ..FileStoreOptions::default()
    };

    let mut final_roots = vec![Hash::ZERO; WRITERS];
    {
        let fb = Arc::new(Forkbase::new_durable(factory(), &dir, opts, 0).unwrap());
        for t in 0..WRITERS {
            fb.fork("master", &format!("b{t}")).unwrap();
        }
        let roots = std::sync::Mutex::new(&mut final_roots);
        std::thread::scope(|s| {
            for t in 0..WRITERS {
                let fb = Arc::clone(&fb);
                let roots = &roots;
                s.spawn(move || {
                    let branch = format!("b{t}");
                    let mut last = Hash::ZERO;
                    for k in 0..commits {
                        // Returning ⇒ the commit is fsync-covered: the root
                        // is durable before it is observable.
                        last = fb.commit(&branch, batch_for(t, k)).unwrap();
                    }
                    roots.lock().unwrap()[t] = last;
                });
            }
        });
        let stats = fb.server_stats();
        // A multi-shard head (SIRI_SHARDS=N in the env) flushes twice per
        // commit: once before publication, once after for the manifest
        // page (DESIGN.md §10) — the fsync-sharing property holds either
        // way.
        let flushes_per_commit = if ShardingPolicy::from_env().initial > 1 { 2 } else { 1 };
        assert_eq!(stats.commits, (WRITERS * commits * flushes_per_commit) as u64);
        assert!(
            stats.fsyncs < stats.commits,
            "group commit must share flushes: {} fsyncs for {} commits",
            stats.fsyncs,
            stats.commits
        );
    } // drop the engine without any extra sync — acked roots must stand alone

    let fb = Forkbase::new_durable(factory(), &dir, opts, 0).unwrap();
    for (t, root) in final_roots.iter().enumerate() {
        let branch = format!("b{t}");
        fb.open_branch(&branch, *root);
        let head = fb.head(&branch).unwrap();
        assert_eq!(
            head.len().unwrap(),
            commits * BATCH - (commits - 1),
            "acked branch {branch} lost records across reopen"
        );
        // Spot-check a value written by the last acked commit.
        let key = format!("t{t:02}-k{:05}", (commits - 1) * BATCH + 1);
        assert!(fb.get(&branch, key.as_bytes()).unwrap().is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn racing_commit_and_branch_delete_never_corrupts() {
    // A commit may race the deletion of its branch: either it errors
    // (branch gone before the commit resolved the slot) or it lands in the
    // orphaned slot and vanishes with it. Other branches are untouched.
    let fb = engine();
    fb.put("master", vec![Entry::new(b"anchor".to_vec(), b"v".to_vec())]).unwrap();
    for round in 0..10 * stress_n() {
        let doomed = format!("doomed{round}");
        fb.fork("master", &doomed).unwrap();
        std::thread::scope(|s| {
            let writer = {
                let fb = Arc::clone(&fb);
                let doomed = doomed.clone();
                s.spawn(move || {
                    for k in 0..5 {
                        if fb.commit(&doomed, batch_for(99, k)).is_err() {
                            break; // branch deleted under us — legal
                        }
                    }
                })
            };
            let fb2 = Arc::clone(&fb);
            let doomed2 = doomed.clone();
            s.spawn(move || {
                let _ = fb2.delete_branch(&doomed2);
            });
            writer.join().unwrap();
        });
        assert!(!fb.branches().contains(&doomed), "branch must be gone");
        assert_eq!(fb.get("master", b"anchor").unwrap().as_deref(), Some(&b"v"[..]));
    }
}

/// A batch spanning all of an 8-shard partition (one key per top byte
/// octant plus a marker), so a racing delete is maximally tempted to
/// interleave mid-publish.
fn spanning_batch(round: usize, k: usize) -> WriteBatch {
    let mut b = WriteBatch::new();
    for shard in 0..8usize {
        b.put(vec![(shard * 32) as u8, round as u8, k as u8], format!("r{round}-{k}").into_bytes());
    }
    b
}

#[test]
fn racing_sharded_commit_and_delete_is_all_or_nothing() {
    // ISSUE 8 satellite: delete_branch retires every shard slot
    // atomically, so a commit racing it either fully publishes (its
    // returned manifest digest re-opens with ALL the batch's keys) or
    // fails with the clean `BranchDeleted` error — never a partial
    // multi-shard publish, and never a head that dangles after the
    // delete.
    let fb = sharded_engine(8);
    fb.put("master", vec![Entry::new(b"anchor".to_vec(), b"v".to_vec())]).unwrap();
    for round in 0..10 * stress_n() {
        let doomed = format!("doomed{round}");
        fb.fork("master", &doomed).unwrap();
        let published = std::thread::scope(|s| {
            let writer = {
                let fb = Arc::clone(&fb);
                let doomed = doomed.clone();
                s.spawn(move || {
                    let mut acked = Vec::new();
                    for k in 0..5usize {
                        match fb.commit(&doomed, spanning_batch(round, k)) {
                            Ok(root) => acked.push((k, root)),
                            // Legal outcomes: the branch vanished before
                            // the slot resolved, or mid-flight.
                            Err(IndexError::Unsupported(_)) | Err(IndexError::BranchDeleted) => {
                                break
                            }
                            Err(other) => panic!("unexpected commit error: {other:?}"),
                        }
                    }
                    acked
                })
            };
            let fb2 = Arc::clone(&fb);
            let doomed2 = doomed.clone();
            s.spawn(move || {
                let _ = fb2.delete_branch(&doomed2);
            });
            writer.join().unwrap()
        });
        assert!(!fb.branches().contains(&doomed), "branch must be gone");
        // Every acked digest must re-open to a head holding ALL of its
        // batch's keys — an ack with missing shard writes would be the
        // partial-publish bug this test exists to catch.
        for (k, root) in published {
            let probe = format!("probe{round}-{k}");
            fb.open_branch(&probe, root);
            for shard in 0..8usize {
                let key = vec![(shard * 32) as u8, round as u8, k as u8];
                assert_eq!(
                    fb.get_uncached(&probe, &key).unwrap().as_deref(),
                    Some(format!("r{round}-{k}").as_bytes()),
                    "round {round} commit {k}: acked root missing shard {shard}'s write"
                );
            }
            fb.delete_branch(&probe).unwrap();
        }
        assert_eq!(fb.get("master", b"anchor").unwrap().as_deref(), Some(&b"v"[..]));
    }
}

#[test]
fn disjoint_shard_writers_on_one_branch_never_conflict() {
    // The tentpole property: 8 writers on ONE branch, each confined to
    // its own key-range shard, commit concurrently with zero CAS
    // conflicts and zero retries — the sharded head makes a contended
    // branch behave like disjoint branches.
    const WRITERS: usize = 8;
    let commits = 10 * stress_n();
    let fb = sharded_engine(WRITERS);
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let fb = Arc::clone(&fb);
            s.spawn(move || {
                let lead = (t * 32 + 1) as u8; // pins the writer to shard t
                for k in 0..commits {
                    let mut b = WriteBatch::new();
                    for i in 0..BATCH {
                        let mut key = vec![lead];
                        key.extend_from_slice(format!("t{t:02}-k{:05}", k * BATCH + i).as_bytes());
                        b.put(key, format!("v{t}-{k}-{i}").into_bytes());
                    }
                    let info = fb.commit_with_info("master", b).unwrap();
                    assert_eq!(info.retries, 0, "writer {t} raced on its private shard");
                    assert_eq!(info.shards.len(), 1);
                    assert_eq!(info.shards[0].shard, t);
                }
            });
        }
    });
    let stats = fb.engine_stats();
    assert_eq!(stats.commits, (WRITERS * commits) as u64);
    assert_eq!(stats.conflicts, 0, "disjoint shards must not contend");
    for (i, s) in fb.shard_stats("master").unwrap().iter().enumerate() {
        assert_eq!(s.commits, commits as u64, "shard {i} commit count");
        assert_eq!(s.conflicts, 0, "shard {i} must be conflict-free");
    }
    // The logical tree holds every record, in key order, across shards.
    let head = fb.head("master").unwrap();
    assert_eq!(head.len().unwrap(), WRITERS * commits * BATCH);
    // And it is bit-identical to the unsharded single-slot build of the
    // same surviving KV set (structural invariance across the partition).
    let single = single_slot_engine();
    for t in 0..WRITERS {
        let lead = (t * 32 + 1) as u8;
        let mut b = WriteBatch::new();
        for k in 0..commits {
            for i in 0..BATCH {
                let mut key = vec![lead];
                key.extend_from_slice(format!("t{t:02}-k{:05}", k * BATCH + i).as_bytes());
                b.put(key, format!("v{t}-{k}-{i}").into_bytes());
            }
        }
        single.commit("master", b).unwrap();
    }
    assert_eq!(head.root(), single.head("master").unwrap().root());
}
