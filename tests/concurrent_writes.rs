//! Multi-writer engine stress suite (ISSUE 5): the `&self`-concurrent
//! Forkbase must linearize commits.
//!
//! Three families:
//!
//! * **disjoint branches** — N writer threads, one branch each, on the
//!   `SIRI_STORE`-selected backend. Every final head must equal a
//!   single-threaded replay of the same batches (structural invariance
//!   makes the comparison exact: same surviving set ⇒ same root digest),
//!   and per-branch head slots mean zero CAS conflicts.
//! * **one contended branch** — many threads CAS-committing interleaved
//!   batches to `master`. The [`siri::CommitInfo`] receipts' `parent →
//!   root` edges must form one chain from the empty root to the final
//!   head, visiting every commit exactly once; replaying the batches in
//!   chain order on a sequential model must reproduce every intermediate
//!   root digest. That is linearizability made checkable.
//! * **group commit** — a durable engine under `FsyncPolicy::Group` must
//!   ack every commit while issuing strictly fewer fsyncs, and the acked
//!   roots must be fully readable after a reopen.
//!
//! `STRESS_N` multiplies the iteration counts (CI's stress job sets it).

use std::collections::HashMap;
use std::sync::Arc;

use siri::{
    CommitInfo, Entry, FileStoreOptions, Forkbase, FsyncPolicy, Hash, IndexFactory, MemStore,
    PosFactory, PosParams, SiriIndex, WriteBatch,
};

const BATCH: usize = 20;

fn stress_n() -> usize {
    std::env::var("STRESS_N").ok().and_then(|v| v.parse().ok()).unwrap_or(1).max(1)
}

fn factory() -> PosFactory {
    PosFactory(PosParams::default())
}

fn engine() -> Arc<Forkbase<PosFactory>> {
    Arc::new(Forkbase::with_store(factory(), siri::env_store(), 0))
}

/// The deterministic batch writer `t` commits at step `k`: 20 fresh puts
/// plus (past the first step) one delete of an earlier key, so the replay
/// exercises the full write path, not just inserts. Keys are disjoint
/// across writers, making the contended test's expected final state
/// order-independent while the chain replay still checks exact order.
fn batch_for(t: usize, k: usize) -> WriteBatch {
    let mut b = WriteBatch::new();
    for i in 0..BATCH {
        b.put(
            format!("t{t:02}-k{:05}", k * BATCH + i).into_bytes(),
            format!("v{t}-{k}-{i}").into_bytes(),
        );
    }
    if k > 0 {
        b.delete(format!("t{t:02}-k{:05}", (k - 1) * BATCH).into_bytes());
    }
    b
}

/// Replay `batches` sequentially on a fresh in-memory index, returning the
/// root after each commit. The ground truth every concurrent schedule is
/// held against.
fn sequential_replay(batches: &[(usize, usize)]) -> Vec<Hash> {
    let mut model = factory().empty(MemStore::new_shared());
    batches.iter().map(|&(t, k)| model.commit(batch_for(t, k)).unwrap()).collect()
}

#[test]
fn disjoint_branch_writers_match_single_threaded_replay() {
    const WRITERS: usize = 6;
    let commits = 8 * stress_n();
    let fb = engine();
    for t in 0..WRITERS {
        fb.fork("master", &format!("b{t}")).unwrap();
    }
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let fb = Arc::clone(&fb);
            s.spawn(move || {
                let branch = format!("b{t}");
                for k in 0..commits {
                    fb.commit(&branch, batch_for(t, k)).unwrap();
                }
            });
        }
    });

    // Per-branch slots: writers on different branches never race a head.
    let stats = fb.engine_stats();
    assert_eq!(stats.commits, (WRITERS * commits) as u64);
    assert_eq!(stats.conflicts, 0, "disjoint branches must not contend");

    // Every head equals the single-threaded replay of its own batches.
    for t in 0..WRITERS {
        let replay: Vec<(usize, usize)> = (0..commits).map(|k| (t, k)).collect();
        let expected = *sequential_replay(&replay).last().unwrap();
        let head = fb.head(&format!("b{t}")).unwrap();
        assert_eq!(head.root(), expected, "branch b{t} diverged from its sequential replay");
        assert_eq!(head.len().unwrap(), commits * BATCH - (commits - 1));
    }
}

/// Reconstruct the head-commit order from the commit receipts: the
/// `parent → root` edges must chain from `start` through every commit
/// exactly once. Panics (with context) when the receipts do not form a
/// chain — which would mean two commits published over the same head.
fn chain_order(start: Hash, infos: &[(usize, usize, CommitInfo)]) -> Vec<(usize, usize)> {
    let mut by_parent: HashMap<Hash, (usize, usize, Hash)> = HashMap::new();
    for &(t, k, info) in infos {
        let clash = by_parent.insert(info.parent, (t, k, info.root));
        assert!(clash.is_none(), "two commits claim the same parent head {:?}", info.parent);
    }
    let mut order = Vec::with_capacity(infos.len());
    let mut cur = start;
    while let Some((t, k, next)) = by_parent.remove(&cur) {
        order.push((t, k));
        cur = next;
    }
    assert!(by_parent.is_empty(), "commit receipts do not form a single chain");
    order
}

#[test]
fn contended_shared_branch_commits_linearize() {
    const WRITERS: usize = 8;
    let commits = 12 * stress_n();
    // Conflicts are scheduling-dependent; accumulate across rounds and
    // require at least one CAS retry overall so the retry path is known to
    // have run. Correctness is asserted in *every* round regardless; when
    // the scheduler happens to serialize the first rounds perfectly (most
    // plausible on a loaded single-core box), extra rounds run until a
    // race is observed, up to a generous cap.
    let mut total_conflicts = 0u64;
    let mut round = 0;
    while round < 3 || (total_conflicts == 0 && round < 12) {
        let fb = engine();
        let infos: Vec<(usize, usize, CommitInfo)> = {
            let collected = std::sync::Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for t in 0..WRITERS {
                    let fb = Arc::clone(&fb);
                    let collected = &collected;
                    s.spawn(move || {
                        let mut mine = Vec::with_capacity(commits);
                        for k in 0..commits {
                            let info = fb.commit_with_info("master", batch_for(t, k)).unwrap();
                            mine.push((t, k, info));
                        }
                        collected.lock().unwrap().extend(mine);
                    });
                }
            });
            collected.into_inner().unwrap()
        };

        // Exactly once: every commit produced exactly one receipt, and the
        // receipts chain from the empty root to the final head.
        assert_eq!(infos.len(), WRITERS * commits);
        let head_root = fb.head("master").unwrap().root();
        let order = chain_order(Hash::ZERO, &infos);
        assert_eq!(order.len(), WRITERS * commits, "every commit must appear in the chain");

        // The sequential model, fed the batches in head-commit order, must
        // reproduce every intermediate root digest the engine published.
        let model_roots = sequential_replay(&order);
        let mut by_step: HashMap<(usize, usize), Hash> =
            infos.iter().map(|&(t, k, info)| ((t, k), info.root)).collect();
        for (step, &(t, k)) in order.iter().enumerate() {
            assert_eq!(
                model_roots[step],
                by_step.remove(&(t, k)).unwrap(),
                "round {round}: root mismatch at chain step {step} (writer {t}, commit {k})"
            );
        }
        assert_eq!(*model_roots.last().unwrap(), head_root, "final head must match the model");

        let stats = fb.engine_stats();
        assert_eq!(stats.commits, (WRITERS * commits) as u64);
        total_conflicts += stats.conflicts;
        round += 1;
    }
    assert!(
        total_conflicts > 0,
        "8 writers x {commits} commits x {round} rounds on one branch produced no CAS retry",
    );
}

#[test]
fn group_commit_engine_acks_survive_reopen_with_fewer_fsyncs() {
    const WRITERS: usize = 4;
    let commits = 6 * stress_n();
    let dir = std::env::temp_dir()
        .join("siri-concurrent-writes")
        .join(format!("group-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = FileStoreOptions {
        fsync: FsyncPolicy::Group(std::time::Duration::from_millis(1)),
        ..FileStoreOptions::default()
    };

    let mut final_roots = vec![Hash::ZERO; WRITERS];
    {
        let fb = Arc::new(Forkbase::new_durable(factory(), &dir, opts, 0).unwrap());
        for t in 0..WRITERS {
            fb.fork("master", &format!("b{t}")).unwrap();
        }
        let roots = std::sync::Mutex::new(&mut final_roots);
        std::thread::scope(|s| {
            for t in 0..WRITERS {
                let fb = Arc::clone(&fb);
                let roots = &roots;
                s.spawn(move || {
                    let branch = format!("b{t}");
                    let mut last = Hash::ZERO;
                    for k in 0..commits {
                        // Returning ⇒ the commit is fsync-covered: the root
                        // is durable before it is observable.
                        last = fb.commit(&branch, batch_for(t, k)).unwrap();
                    }
                    roots.lock().unwrap()[t] = last;
                });
            }
        });
        let stats = fb.server_stats();
        assert_eq!(stats.commits, (WRITERS * commits) as u64);
        assert!(
            stats.fsyncs < stats.commits,
            "group commit must share flushes: {} fsyncs for {} commits",
            stats.fsyncs,
            stats.commits
        );
    } // drop the engine without any extra sync — acked roots must stand alone

    let fb = Forkbase::new_durable(factory(), &dir, opts, 0).unwrap();
    for (t, root) in final_roots.iter().enumerate() {
        let branch = format!("b{t}");
        fb.open_branch(&branch, *root);
        let head = fb.head(&branch).unwrap();
        assert_eq!(
            head.len().unwrap(),
            commits * BATCH - (commits - 1),
            "acked branch {branch} lost records across reopen"
        );
        // Spot-check a value written by the last acked commit.
        let key = format!("t{t:02}-k{:05}", (commits - 1) * BATCH + 1);
        assert!(fb.get(&branch, key.as_bytes()).unwrap().is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn racing_commit_and_branch_delete_never_corrupts() {
    // A commit may race the deletion of its branch: either it errors
    // (branch gone before the commit resolved the slot) or it lands in the
    // orphaned slot and vanishes with it. Other branches are untouched.
    let fb = engine();
    fb.put("master", vec![Entry::new(b"anchor".to_vec(), b"v".to_vec())]).unwrap();
    for round in 0..10 * stress_n() {
        let doomed = format!("doomed{round}");
        fb.fork("master", &doomed).unwrap();
        std::thread::scope(|s| {
            let writer = {
                let fb = Arc::clone(&fb);
                let doomed = doomed.clone();
                s.spawn(move || {
                    for k in 0..5 {
                        if fb.commit(&doomed, batch_for(99, k)).is_err() {
                            break; // branch deleted under us — legal
                        }
                    }
                })
            };
            let fb2 = Arc::clone(&fb);
            let doomed2 = doomed.clone();
            s.spawn(move || {
                let _ = fb2.delete_branch(&doomed2);
            });
            writer.join().unwrap();
        });
        assert!(!fb.branches().contains(&doomed), "branch must be gone");
        assert_eq!(fb.get("master", b"anchor").unwrap().as_deref(), Some(&b"v"[..]));
    }
}
